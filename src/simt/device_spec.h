#pragma once

#include <cstddef>
#include <cstdint>

namespace nestpar::simt {

/// Hard device-runtime resource limits whose exhaustion *refuses* launches
/// (SimtError), as opposed to the soft pending-launch spill model below that
/// only slows them down. Zero means unlimited for the pool and heap fields.
///
/// Determinism note: the engine partitions each grid's pool and heap budget
/// evenly across its blocks, so which launch attempt gets refused depends
/// only on per-block launch order — bit-identical across host engines — not
/// on cross-block timing (a model approximation of the shared hardware pool).
struct ResourceLimits {
  /// Device launches a grid may have pending; 0 = unlimited. CUDA's
  /// cudaLimitDevRuntimePendingLaunchCount defaults to 2048.
  int pending_launch_capacity = 0;
  /// Maximum nesting depth of device launches (CDP hard limit: 24).
  int max_nesting_depth = 24;
  /// Device-heap bytes available for launch bookkeeping; 0 = unlimited.
  std::size_t device_heap_bytes = 0;
  /// Heap bytes each pending launch consumes from `device_heap_bytes`.
  std::size_t heap_bytes_per_launch = 1024;

  /// Everything unlimited except the architectural depth limit (the default).
  static ResourceLimits unlimited() { return ResourceLimits{}; }
  /// CUDA device-runtime defaults: 2048-slot pool, depth 24, 8MB heap.
  static ResourceLimits cdp_defaults();
};

/// Architectural and cost-model parameters of the simulated GPU.
///
/// The defaults model an NVIDIA K20 (Kepler GK110, compute capability 3.5),
/// the device used in the paper's evaluation. All per-operation costs are in
/// device clock cycles; wall-clock conversion uses `clock_ghz`.
struct DeviceSpec {
  // --- Hardware shape -------------------------------------------------------
  int num_sms = 13;             ///< Streaming multiprocessors.
  int cores_per_sm = 192;       ///< CUDA cores per SM.
  int warp_size = 32;           ///< Lanes per warp.
  int schedulers_per_sm = 4;    ///< Warp schedulers per SM (issue width).

  // --- Occupancy limits (CC 3.5) -------------------------------------------
  int max_warps_per_sm = 64;
  int max_blocks_per_sm = 16;
  int max_threads_per_sm = 2048;
  int max_threads_per_block = 1024;
  std::size_t shared_mem_per_sm = 48 * 1024;
  std::size_t shared_mem_per_block = 48 * 1024;
  int registers_per_sm = 65536;
  int max_concurrent_grids = 32;  ///< HyperQ / CDP concurrent grid limit.

  // --- Clock ----------------------------------------------------------------
  double clock_ghz = 0.706;  ///< K20 core clock.

  // --- Cost model (cycles unless noted) --------------------------------------
  double compute_op_cycles = 1.0;   ///< One arithmetic instruction per lane-step.
  double shared_op_cycles = 2.0;    ///< Shared-memory access (per bank-conflict way).
  double mem_base_cycles = 10.0;    ///< Fixed issue+pipeline cost of a global access step.
  double mem_transaction_cycles = 20.0;  ///< Throughput cost per 128B transaction.
  double atomic_op_cycles = 24.0;   ///< Per serialized atomic to one address.
  double atomic_drain_cycles = 1.5; ///< Device-wide per-op drain rate on the hottest
                                    ///< address (Kepler: ~1 same-address atomic per clock).
  double sync_cycles = 16.0;        ///< Block-wide barrier.
  double launch_issue_cycles = 800.0;     ///< Lane-side cost of issuing a device launch.
  double block_dispatch_cycles = 300.0;   ///< Fixed overhead to start a block on an SM.

  // --- Launch latencies (microseconds; converted internally) ----------------
  double host_launch_us = 6.0;    ///< Host-side kernel launch latency.
  double device_launch_us = 12.0; ///< Device-side (nested) kernel launch latency.
  /// Grid-management-unit service time per device-launched grid: nested
  /// grids activate through a single queue, so massive CDP fan-out
  /// serializes here (the paper's dpar-naive / rec-naive overhead).
  double device_launch_service_us = 4.0;
  /// Pending-launch pool: nested launches beyond this backlog spill into the
  /// software-virtualized queue, whose per-grid cost is dramatically higher
  /// (CUDA's cudaLimitDevRuntimePendingLaunchCount behaviour).
  int pending_launch_pool = 2048;
  double virtualized_launch_service_us = 300.0;
  /// GMU service time per *extra* work descriptor carried by a consolidated
  /// nested launch (workload consolidation): a grid aggregating K descriptors
  /// costs one base activation plus (K-1) of these — far cheaper than K
  /// separate activations, which is the whole point of consolidating.
  double aggregated_descriptor_service_us = 0.2;

  /// Hard launch-resource limits (refusals, not slowdowns); default is
  /// unlimited pool/heap with the architectural 24-level depth limit.
  ResourceLimits limits;

  // --- Memory system ---------------------------------------------------------
  int mem_segment_bytes = 128;  ///< Coalescing segment (L1 line) size.
  int atomic_segment_bytes = 8; ///< Address granularity for atomic conflict detection.

  /// Warps resident on an SM at which latency hiding saturates. Below this,
  /// block execution slows proportionally (poor occupancy => exposed latency).
  int latency_hiding_warps = 24;

  /// K20-like device (the paper's testbed).
  static DeviceSpec k20();
  /// K40-like Kepler: 15 SMs, higher clock, 64KB-configurable shared memory
  /// kept at the 48KB default.
  static DeviceSpec k40();
  /// Entry Kepler (GTX-650-class): 2 SMs — a stress preset showing how the
  /// templates behave when the device is tiny.
  static DeviceSpec small_kepler();

  /// Occupancy calculator: maximum number of resident blocks per SM for a
  /// kernel with the given block shape, mirroring the CUDA occupancy
  /// calculator for CC 3.5 (warp/block/thread/shared-memory/register limits).
  int max_resident_blocks(int threads_per_block, std::size_t smem_per_block,
                          int regs_per_thread) const;

  /// Warps needed by a block of `threads_per_block` threads (rounded up).
  int warps_per_block(int threads_per_block) const;

  /// Cycles for a host-side kernel launch.
  double host_launch_cycles() const { return host_launch_us * 1e3 * clock_ghz; }
  /// Cycles of queueing/dispatch latency for a device-side (nested) launch.
  double device_launch_cycles() const { return device_launch_us * 1e3 * clock_ghz; }
  /// Cycles the grid-management unit spends activating one nested grid.
  double device_launch_service_cycles() const {
    return device_launch_service_us * 1e3 * clock_ghz;
  }
  /// Activation cost once the pending-launch pool has overflowed.
  double virtualized_launch_service_cycles() const {
    return virtualized_launch_service_us * 1e3 * clock_ghz;
  }
  /// Incremental GMU cost per extra descriptor in a consolidated launch.
  double aggregated_descriptor_service_cycles() const {
    return aggregated_descriptor_service_us * 1e3 * clock_ghz;
  }

  /// Convert model cycles to microseconds.
  double cycles_to_us(double cycles) const { return cycles / (clock_ghz * 1e3); }
};

}  // namespace nestpar::simt
