#pragma once

#include <string>

namespace nestpar::simt {

/// How the functional pass executes the blocks of a grid on the host.
enum class ExecMode {
  kSerial,    ///< One host thread, blocks in order (the classic engine).
  kParallel,  ///< Blocks of top-level grids spread over a host thread pool.
};

/// Host execution policy for a Device (or a single Session). The parallel
/// engine is bit-identical to the serial one — same functional results, same
/// `RunReport` — it only changes wall-clock time, so switching modes is
/// always safe for the workloads shipped in this repo.
struct ExecPolicy {
  ExecMode mode = ExecMode::kSerial;
  /// Host threads for kParallel; 0 = auto (NESTPAR_THREADS env if set,
  /// otherwise std::thread::hardware_concurrency()).
  int threads = 0;

  static ExecPolicy serial() { return ExecPolicy{ExecMode::kSerial, 0}; }
  static ExecPolicy parallel(int threads = 0) {
    return ExecPolicy{ExecMode::kParallel, threads};
  }

  /// Policy from the environment: `NESTPAR_EXEC=serial|parallel` selects the
  /// mode (default serial), `NESTPAR_THREADS=N` sets the pool size and, when
  /// N > 1 and NESTPAR_EXEC is unset, also opts into the parallel engine.
  static ExecPolicy from_env();

  /// The worker count this policy resolves to on this machine (>= 1).
  /// kSerial always resolves to 1.
  int resolve_threads() const;

  bool operator==(const ExecPolicy&) const = default;
};

std::string to_string(const ExecPolicy& p);

}  // namespace nestpar::simt
