#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace nestpar::simt {

/// Persistent host thread pool used by the parallel functional engine.
///
/// The only primitive is `parallel_for`: run `fn(i)` for i in [0, count)
/// across the workers plus the calling thread, claiming dynamically sized
/// chunks from a shared counter so skewed per-block work (the whole point of
/// this repo) still load-balances. Exceptions are captured per index and the
/// one with the smallest index is rethrown after the loop completes, so
/// error behavior is deterministic regardless of thread timing.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers; the calling thread is the remaining one.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution threads, including the caller of parallel_for.
  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  void parallel_for(std::int64_t count,
                    const std::function<void(std::int64_t)>& fn);

 private:
  struct Job {
    std::int64_t count = 0;
    std::int64_t grain = 1;
    const std::function<void(std::int64_t)>* fn = nullptr;
    std::atomic<std::int64_t> next{0};  ///< Next index to claim.
    std::atomic<std::int64_t> done{0};  ///< Indices finished (incl. failed).
    std::mutex err_mu;
    std::int64_t err_index = -1;
    std::exception_ptr err;
  };

  void worker_main();
  /// Claim-and-run loop shared by workers and the submitting thread.
  void work(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;       ///< Wakes workers (new job / stop).
  std::condition_variable done_cv_;  ///< Wakes the submitter on completion.
  std::shared_ptr<Job> job_;
  std::uint64_t job_serial_ = 0;
  bool stop_ = false;
};

}  // namespace nestpar::simt
