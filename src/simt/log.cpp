#include "src/simt/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace nestpar::simt::log {

namespace {

std::atomic<int>& level_flag() {
  static std::atomic<int> level{static_cast<int>(Level::kWarn)};
  return level;
}

void vemit(Level lvl, const char* fmt, std::va_list args) {
  if (!enabled(lvl)) return;
  std::vfprintf(stderr, fmt, args);
}

}  // namespace

void set_level(Level level) {
  level_flag().store(static_cast<int>(level), std::memory_order_relaxed);
}

Level level() {
  return static_cast<Level>(level_flag().load(std::memory_order_relaxed));
}

bool enabled(Level lvl) {
  return static_cast<int>(lvl) <=
         level_flag().load(std::memory_order_relaxed);
}

#define NESTPAR_LOG_BODY(lvl)    \
  std::va_list args;             \
  va_start(args, fmt);           \
  vemit(lvl, fmt, args);         \
  va_end(args)

void error(const char* fmt, ...) { NESTPAR_LOG_BODY(Level::kError); }
void warn(const char* fmt, ...) { NESTPAR_LOG_BODY(Level::kWarn); }
void info(const char* fmt, ...) { NESTPAR_LOG_BODY(Level::kInfo); }
void debug(const char* fmt, ...) { NESTPAR_LOG_BODY(Level::kDebug); }

#undef NESTPAR_LOG_BODY

}  // namespace nestpar::simt::log
