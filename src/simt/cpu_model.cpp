#include "src/simt/cpu_model.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace nestpar::simt {

CacheSim::CacheSim(std::size_t bytes, int line_bytes, int ways) : ways_(ways) {
  if (line_bytes <= 0 || (line_bytes & (line_bytes - 1)) != 0) {
    throw std::invalid_argument("cache line size must be a power of two");
  }
  if (ways <= 0) throw std::invalid_argument("cache ways must be positive");
  line_shift_ = std::countr_zero(static_cast<unsigned>(line_bytes));
  num_sets_ = bytes / (static_cast<std::size_t>(line_bytes) * ways);
  if (num_sets_ == 0) num_sets_ = 1;
  tags_.assign(num_sets_ * static_cast<std::size_t>(ways_), 0);
  stamps_.assign(tags_.size(), 0);
}

void CacheSim::clear() {
  tags_.assign(tags_.size(), 0);
  stamps_.assign(stamps_.size(), 0);
  clock_ = 0;
}

bool CacheSim::access(std::uint64_t addr) {
  const std::uint64_t line = addr >> line_shift_;
  const std::uint64_t tag = line + 1;  // +1 so 0 means "empty".
  const std::size_t set = static_cast<std::size_t>(line % num_sets_);
  const std::size_t base = set * static_cast<std::size_t>(ways_);
  ++clock_;
  std::size_t lru = base;
  for (std::size_t i = base; i < base + static_cast<std::size_t>(ways_); ++i) {
    if (tags_[i] == tag) {
      stamps_[i] = clock_;
      return true;
    }
    if (stamps_[i] < stamps_[lru]) lru = i;
  }
  tags_[lru] = tag;
  stamps_[lru] = clock_;
  return false;
}

CpuTimer::CpuTimer(CpuSpec spec)
    : spec_(spec),
      cache_(spec.cache_bytes, spec.cache_line_bytes, spec.cache_ways),
      streams_(static_cast<std::size_t>(spec.prefetch_streams), 0) {}

bool CpuTimer::prefetched(std::uint64_t line) {
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const std::uint64_t prev = streams_[i];
    if (prev != 0 && (line == prev + 1 || line == prev + 2 || line == prev)) {
      streams_[i] = line;
      return true;
    }
  }
  streams_[stream_cursor_] = line;
  stream_cursor_ = (stream_cursor_ + 1) % streams_.size();
  return false;
}

void CpuTimer::reset() {
  cycles_ = 0.0;
  accesses_ = 0;
  misses_ = 0;
  cache_.clear();
  std::fill(streams_.begin(), streams_.end(), 0);
  stream_cursor_ = 0;
}

}  // namespace nestpar::simt
