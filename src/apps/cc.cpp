#include "src/apps/cc.h"

#include <memory>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "src/nested/workload.h"

namespace nestpar::apps {

namespace {

using simt::LaneCtx;

/// One min-label propagation sweep: active nodes push their label to all
/// neighbors with atomicMin. Scatter workload; `commit` clears the mask.
class CcPropagateWorkload final : public nested::NestedLoopWorkload {
 public:
  CcPropagateWorkload(const graph::Csr& g, std::uint32_t* labels,
                      std::uint8_t* mask, std::uint8_t* next_mask, int* changed)
      : g_(&g), labels_(labels), mask_(mask), next_mask_(next_mask),
        changed_(changed) {}

  std::int64_t size() const override { return g_->num_nodes(); }
  std::uint32_t inner_size(std::int64_t i) const override {
    return mask_[static_cast<std::size_t>(i)] != 0
               ? g_->degree(static_cast<std::uint32_t>(i))
               : 0;
  }
  void load_outer(LaneCtx& t, std::int64_t i) const override {
    const auto v = static_cast<std::uint32_t>(i);
    t.ld(&mask_[v]);
    if (mask_[v] != 0) {
      t.ld(&labels_[v]);
      t.ld(&g_->row_offsets[v]);
      t.ld(&g_->row_offsets[v + 1]);
    }
  }
  double body(LaneCtx& t, std::int64_t i, std::uint32_t j) const override {
    const auto v = static_cast<std::uint32_t>(i);
    const std::size_t e = g_->row_offsets[v] + j;
    const std::uint32_t n = t.ld(&g_->col_indices[e]);
    const std::uint32_t old = t.atomic_min(&labels_[n], labels_[v]);
    if (old > labels_[v]) {
      t.st(&next_mask_[n], std::uint8_t{1});
      t.st(changed_, 1);
    }
    return 0.0;
  }
  void commit(LaneCtx& t, std::int64_t i, double) const override {
    const auto v = static_cast<std::uint32_t>(i);
    if (mask_[v] != 0) t.st(&mask_[v], std::uint8_t{0});
  }
  const char* name() const override { return "cc"; }

 private:
  const graph::Csr* g_;
  std::uint32_t* labels_;
  std::uint8_t* mask_;
  std::uint8_t* next_mask_;
  int* changed_;
};

}  // namespace

std::vector<std::uint32_t> run_cc(simt::Device& dev, const graph::Csr& g,
                                  nested::LoopTemplate tmpl,
                                  const nested::LoopParams& p) {
  const std::uint32_t n = g.num_nodes();
  std::vector<std::uint32_t> labels(n);
  std::iota(labels.begin(), labels.end(), 0u);
  std::vector<std::uint8_t> mask(n, 1), next_mask(n, 0);
  auto changed = std::make_shared<int>(1);

  CcPropagateWorkload w(g, labels.data(), mask.data(), next_mask.data(),
                        changed.get());
  simt::LaunchConfig swap_cfg;
  swap_cfg.block_threads = p.thread_block_size;
  swap_cfg.grid_blocks =
      simt::Device::blocks_for(n, p.thread_block_size, p.max_grid_blocks);
  swap_cfg.name = "cc/advance";

  int guard = 0;
  while (*changed != 0) {
    *changed = 0;
    nested::run_nested_loop(
        dev, w, nested::LoopRun{.tmpl = tmpl, .params = p});
    // Promote the next frontier (nodes whose label improved this sweep).
    dev.launch_threads(swap_cfg, [&, n](LaneCtx& t) {
      for (std::int64_t v = t.global_idx(); v < n; v += t.grid_threads()) {
        const std::uint8_t nm = t.ld(&next_mask[static_cast<std::size_t>(v)]);
        if (nm != 0) {
          t.st(&mask[static_cast<std::size_t>(v)], std::uint8_t{1});
          t.st(&next_mask[static_cast<std::size_t>(v)], std::uint8_t{0});
        }
      }
    });
    if (++guard > static_cast<int>(n) + 2) {
      throw std::logic_error("run_cc: failed to converge");
    }
  }
  return labels;
}

std::vector<std::uint32_t> cc_serial(const graph::Csr& g,
                                     simt::CpuTimer* timer) {
  const std::uint32_t n = g.num_nodes();
  std::vector<std::uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0u);

  const auto find = [&](std::uint32_t x) {
    while (true) {
      const std::uint32_t p = timer != nullptr ? timer->ld(&parent[x])
                                               : parent[x];
      if (p == x) return x;
      const std::uint32_t gp =
          timer != nullptr ? timer->ld(&parent[p]) : parent[p];
      parent[x] = gp;  // Path halving.
      if (timer != nullptr) timer->st(&parent[x], gp);
      x = gp;
    }
  };

  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t c : g.neighbors(v)) {
      if (timer != nullptr) timer->ld(&c);
      const std::uint32_t a = find(v);
      const std::uint32_t b = find(c);
      if (a != b) {
        const std::uint32_t lo = std::min(a, b), hi = std::max(a, b);
        parent[hi] = lo;  // Union by id keeps the min-id as root.
        if (timer != nullptr) timer->st(&parent[hi], lo);
      }
    }
  }
  std::vector<std::uint32_t> labels(n);
  for (std::uint32_t v = 0; v < n; ++v) labels[v] = find(v);
  return labels;
}

std::uint32_t count_components(const std::vector<std::uint32_t>& labels) {
  std::unordered_set<std::uint32_t> roots(labels.begin(), labels.end());
  return static_cast<std::uint32_t>(roots.size());
}

}  // namespace nestpar::apps
