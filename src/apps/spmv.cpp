#include "src/apps/spmv.h"

#include <stdexcept>

namespace nestpar::apps {

SpmvWorkload::SpmvWorkload(const matrix::CsrMatrix& a, const float* x,
                           float* y)
    : a_(&a), x_(x), y_(y) {}

void SpmvWorkload::load_outer(simt::LaneCtx& t, std::int64_t i) const {
  t.ld(&a_->row_offsets[static_cast<std::size_t>(i)]);
  t.ld(&a_->row_offsets[static_cast<std::size_t>(i) + 1]);
}

double SpmvWorkload::body(simt::LaneCtx& t, std::int64_t i,
                          std::uint32_t j) const {
  const std::size_t e = a_->row_offsets[static_cast<std::size_t>(i)] + j;
  const std::uint32_t c = t.ld(&a_->col_indices[e]);
  const float v = t.ld(&a_->values[e]);
  const float xv = t.ld(&x_[c]);
  t.compute(2);  // multiply-add
  return static_cast<double>(v) * xv;
}

void SpmvWorkload::commit(simt::LaneCtx& t, std::int64_t i,
                          double value) const {
  t.st(&y_[static_cast<std::size_t>(i)], static_cast<float>(value));
}

std::vector<float> run_spmv(simt::Device& dev, const matrix::CsrMatrix& a,
                            std::span<const float> x,
                            nested::LoopTemplate tmpl,
                            const nested::LoopParams& p) {
  if (x.size() != a.cols) {
    throw std::invalid_argument("run_spmv: vector size mismatch");
  }
  std::vector<float> y(a.rows, 0.0f);
  SpmvWorkload w(a, x.data(), y.data());
  nested::run_nested_loop(
      dev, w, nested::LoopRun{.tmpl = tmpl, .params = p});
  return y;
}

}  // namespace nestpar::apps
