#include "src/apps/bfs.h"

#include <memory>
#include <stdexcept>
#include <string>

namespace nestpar::apps {

namespace {

using simt::BlockCtx;
using simt::Device;
using simt::Kernel;
using simt::LaneCtx;
using simt::LaunchConfig;

struct BfsCtx {
  const graph::Csr* g;
  std::uint32_t* level;
  BfsRecOptions opt;
};

/// Degraded path shared by both recursive BFS templates: when a nested
/// launch is refused, the refusing lane relaxes the reachable improvement
/// region iteratively (explicit worklist) from the refused node — same
/// atomic_min discipline, no further nested launches.
void iterative_bfs_fallback(LaneCtx& t, const graph::Csr& g,
                            std::uint32_t* level, std::uint32_t start) {
  std::vector<std::uint32_t> work{start};
  while (!work.empty()) {
    const std::uint32_t v = work.back();
    work.pop_back();
    const std::uint32_t lv = t.ld(&level[v]);
    if (lv == kBfsUnreached) continue;
    const std::uint32_t off = t.ld(&g.row_offsets[v]);
    const std::uint32_t end = t.ld(&g.row_offsets[v + 1]);
    for (std::uint32_t e = off; e < end; ++e) {
      const std::uint32_t nb = t.ld(&g.col_indices[e]);
      const std::uint32_t old = t.atomic_min(&level[nb], lv + 1);
      if (old > lv + 1 && g.degree(nb) > 0) work.push_back(nb);
    }
  }
}

/// Naive recursion: single-block kernel per traversed node; each thread
/// relaxes one neighbor and fire-and-forget recurses on improvement.
Kernel make_naive_bfs_kernel(std::shared_ptr<const BfsCtx> ctx,
                             std::uint32_t v);

Kernel make_naive_bfs_kernel(std::shared_ptr<const BfsCtx> ctx,
                             std::uint32_t v) {
  return [ctx, v](BlockCtx& blk) {
    const graph::Csr& g = *ctx->g;
    blk.each_thread([&](LaneCtx& t) {
      const std::uint32_t lv = t.ld(&ctx->level[v]);
      if (lv == kBfsUnreached) return;  // Stale queued traversal.
      const std::uint32_t off = t.ld(&g.row_offsets[v]);
      const std::uint32_t end = t.ld(&g.row_offsets[v + 1]);
      for (std::uint32_t e = off + static_cast<std::uint32_t>(t.thread_idx());
           e < end; e += static_cast<std::uint32_t>(t.block_dim())) {
        const std::uint32_t n = t.ld(&g.col_indices[e]);
        const std::uint32_t old = t.atomic_min(&ctx->level[n], lv + 1);
        if (old > lv + 1 && g.degree(n) > 0) {
          LaunchConfig cc;
          cc.grid_blocks = 1;
          cc.block_threads = ctx->opt.rec_block_size;
          cc.name = "bfs/rec-naive";
          const int slot =
              static_cast<int>(e % static_cast<std::uint32_t>(
                                       ctx->opt.streams_per_block)) -
              1;
          if (!t.try_launch_async(cc, make_naive_bfs_kernel(ctx, n), slot)) {
            t.note_degraded();
            iterative_bfs_fallback(t, g, ctx->level, n);
          }
        }
      }
    });
  };
}

/// Hierarchical recursion: one block per neighbor (child), threads over the
/// child's neighbors (grandchildren); improved grandchildren recurse with a
/// grid-per-node fire-and-forget launch.
Kernel make_hier_bfs_kernel(std::shared_ptr<const BfsCtx> ctx,
                            std::uint32_t v);

Kernel make_hier_bfs_kernel(std::shared_ptr<const BfsCtx> ctx,
                            std::uint32_t v) {
  return [ctx, v](BlockCtx& blk) {
    const graph::Csr& g = *ctx->g;
    auto improved = blk.shared_array<std::int32_t>(1);
    auto child = blk.shared_array<std::uint32_t>(1);

    blk.each_thread([&](LaneCtx& t) {
      if (t.thread_idx() != 0) return;
      const std::uint32_t lv = t.ld(&ctx->level[v]);
      if (lv == kBfsUnreached) return;
      const std::uint32_t off = t.ld(&g.row_offsets[v]);
      const std::uint32_t c =
          t.ld(&g.col_indices[off + static_cast<std::uint32_t>(blk.block_idx())]);
      t.sh_st(&child[0], c);
      const std::uint32_t old = t.atomic_min(&ctx->level[c], lv + 1);
      if (old > lv + 1) t.sh_st(&improved[0], 1);
    });

    blk.each_thread([&](LaneCtx& t) {
      if (t.sh_ld(&improved[0]) == 0) return;
      const std::uint32_t c = t.sh_ld(&child[0]);
      const std::uint32_t lc = t.ld(&ctx->level[c]);
      const std::uint32_t coff = t.ld(&g.row_offsets[c]);
      const std::uint32_t cend = t.ld(&g.row_offsets[c + 1]);
      for (std::uint32_t e = coff + static_cast<std::uint32_t>(t.thread_idx());
           e < cend; e += static_cast<std::uint32_t>(t.block_dim())) {
        const std::uint32_t gch = t.ld(&g.col_indices[e]);
        const std::uint32_t old = t.atomic_min(&ctx->level[gch], lc + 1);
        if (old > lc + 1 && g.degree(gch) > 0) {
          LaunchConfig cc;
          cc.grid_blocks = static_cast<int>(g.degree(gch));
          cc.block_threads = ctx->opt.rec_block_size;
          cc.name = "bfs/rec-hier";
          const int slot =
              static_cast<int>(e % static_cast<std::uint32_t>(
                                       ctx->opt.streams_per_block)) -
              1;
          if (!t.try_launch_async(cc, make_hier_bfs_kernel(ctx, gch), slot)) {
            t.note_degraded();
            iterative_bfs_fallback(t, g, ctx->level, gch);
          }
        }
      }
    });
  };
}

}  // namespace

std::vector<std::uint32_t> bfs_flat_gpu(Device& dev, const graph::Csr& g,
                                        std::uint32_t src, int block_size) {
  const std::uint32_t n = g.num_nodes();
  if (src >= n) throw std::invalid_argument("bfs_flat_gpu: source oob");
  std::vector<std::uint32_t> level(n, kBfsUnreached);
  level[src] = 0;
  auto changed = std::make_shared<int>(1);

  LaunchConfig cfg;
  cfg.block_threads = block_size;
  cfg.grid_blocks = Device::blocks_for(n, block_size, 65535);
  cfg.name = "bfs/flat";

  std::uint32_t cur = 0;
  while (*changed != 0) {
    *changed = 0;
    dev.launch_threads(cfg, [&, cur, n](LaneCtx& t) {
      for (std::int64_t v = t.global_idx(); v < n; v += t.grid_threads()) {
        if (t.ld(&level[static_cast<std::size_t>(v)]) != cur) continue;
        const auto u = static_cast<std::uint32_t>(v);
        const std::uint32_t off = t.ld(&g.row_offsets[u]);
        const std::uint32_t end = t.ld(&g.row_offsets[u + 1]);
        for (std::uint32_t e = off; e < end; ++e) {
          const std::uint32_t nb = t.ld(&g.col_indices[e]);
          // Benign race: several frontier nodes may write the same value.
          if (t.ld(&level[nb]) > cur + 1) {
            t.st(&level[nb], cur + 1);
            t.st(changed.get(), 1);
          }
        }
      }
    });
    ++cur;
    if (cur > n) throw std::logic_error("bfs_flat_gpu: failed to converge");
  }
  return level;
}

std::vector<std::uint32_t> bfs_recursive_gpu(Device& dev, const graph::Csr& g,
                                             std::uint32_t src,
                                             rec::RecTemplate tmpl,
                                             const BfsRecOptions& opt) {
  const std::uint32_t n = g.num_nodes();
  if (src >= n) throw std::invalid_argument("bfs_recursive_gpu: source oob");
  if (opt.streams_per_block < 1) {
    throw std::invalid_argument("bfs_recursive_gpu: streams_per_block < 1");
  }
  if (tmpl == rec::RecTemplate::kFlat) {
    throw std::invalid_argument(
        "bfs_recursive_gpu: use bfs_flat_gpu for the flat template");
  }
  auto level = std::vector<std::uint32_t>(n, kBfsUnreached);
  level[src] = 0;
  if (g.degree(src) == 0) return level;

  auto ctx = std::make_shared<BfsCtx>(BfsCtx{&g, level.data(), opt});
  switch (tmpl) {
    case rec::RecTemplate::kRecNaive: {
      LaunchConfig cfg;
      cfg.grid_blocks = 1;
      cfg.block_threads = opt.rec_block_size;
      cfg.name = "bfs/rec-naive";
      dev.launch(cfg, make_naive_bfs_kernel(ctx, src));
      break;
    }
    case rec::RecTemplate::kRecHier: {
      LaunchConfig cfg;
      cfg.grid_blocks = static_cast<int>(g.degree(src));
      cfg.block_threads = opt.rec_block_size;
      cfg.name = "bfs/rec-hier";
      dev.launch(cfg, make_hier_bfs_kernel(ctx, src));
      break;
    }
    case rec::RecTemplate::kFlat:
      throw std::invalid_argument(
          "bfs_recursive_gpu: use bfs_flat_gpu for the flat template");
    case rec::RecTemplate::kAutoropes:
      throw std::invalid_argument(
          "bfs_recursive_gpu: autoropes has no BFS instantiation");
  }
  return level;
}

std::vector<std::uint32_t> bfs_serial_iterative(const graph::Csr& g,
                                                std::uint32_t src,
                                                simt::CpuTimer* timer) {
  const std::uint32_t n = g.num_nodes();
  if (src >= n) throw std::invalid_argument("bfs_serial_iterative: oob");
  std::vector<std::uint32_t> level(n, kBfsUnreached);
  std::vector<std::uint8_t> frontier(n, 0), updating(n, 0), visited(n, 0);
  level[src] = 0;
  frontier[src] = 1;
  visited[src] = 1;
  // Topology-driven two-pass sweep: the direct CPU port of the GPU baseline
  // [5] (frontier kernel + update kernel, each scanning every node per
  // level). The full scans are what let the recursive (frontier-queue) form
  // below beat it — the 1.25-3.3x gap the paper reports.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint8_t f =
          timer != nullptr ? timer->ld(&frontier[v]) : frontier[v];
      if (timer != nullptr) timer->compute(1);
      if (f == 0) continue;
      frontier[v] = 0;
      if (timer != nullptr) timer->st(&frontier[v], std::uint8_t{0});
      const std::uint32_t lv =
          timer != nullptr ? timer->ld(&level[v]) : level[v];
      for (std::uint32_t e = g.row_offsets[v]; e < g.row_offsets[v + 1];
           ++e) {
        const std::uint32_t nb =
            timer != nullptr ? timer->ld(&g.col_indices[e]) : g.col_indices[e];
        // [5] guards discovery on the visited and updating flags.
        const std::uint8_t vx =
            timer != nullptr ? timer->ld(&visited[nb]) : visited[nb];
        const std::uint8_t up =
            timer != nullptr ? timer->ld(&updating[nb]) : updating[nb];
        if (timer != nullptr) timer->compute(1);
        if (vx == 0 && up == 0) {
          level[nb] = lv + 1;
          updating[nb] = 1;
          if (timer != nullptr) {
            timer->st(&level[nb], lv + 1);
            timer->st(&updating[nb], std::uint8_t{1});
          }
        }
      }
    }
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint8_t u =
          timer != nullptr ? timer->ld(&updating[v]) : updating[v];
      if (timer != nullptr) timer->compute(1);
      if (u == 0) continue;
      updating[v] = 0;
      frontier[v] = 1;
      visited[v] = 1;
      if (timer != nullptr) {
        timer->st(&updating[v], std::uint8_t{0});
        timer->st(&frontier[v], std::uint8_t{1});
        timer->st(&visited[v], std::uint8_t{1});
      }
      changed = true;
    }
  }
  return level;
}

std::vector<std::uint32_t> bfs_serial_recursive(const graph::Csr& g,
                                                std::uint32_t src,
                                                simt::CpuTimer* timer) {
  const std::uint32_t n = g.num_nodes();
  if (src >= n) throw std::invalid_argument("bfs_serial_recursive: oob");
  std::vector<std::uint32_t> level(n, kBfsUnreached);
  level[src] = 0;

  // Recursion over frontiers: visit(frontier) expands one level and
  // tail-recurses on the next frontier (eliminating the tail call yields the
  // iterative sweep above, per the paper's §II.C). Work-efficient: each node
  // is expanded exactly once.
  std::vector<std::uint32_t> frontier{src};
  std::vector<std::uint32_t> next;
  auto visit = [&](auto&& self, std::uint32_t depth) -> void {
    if (frontier.empty()) return;
    if (timer != nullptr) timer->call();
    next.clear();
    for (const std::uint32_t v : frontier) {
      for (std::uint32_t e = g.row_offsets[v]; e < g.row_offsets[v + 1];
           ++e) {
        const std::uint32_t nb =
            timer != nullptr ? timer->ld(&g.col_indices[e]) : g.col_indices[e];
        const std::uint32_t ln =
            timer != nullptr ? timer->ld(&level[nb]) : level[nb];
        if (timer != nullptr) timer->compute(1);
        if (ln == kBfsUnreached) {
          level[nb] = depth + 1;
          if (timer != nullptr) timer->st(&level[nb], depth + 1);
          next.push_back(nb);
        }
      }
    }
    frontier.swap(next);
    self(self, depth + 1);
  };
  visit(visit, 0);
  return level;
}

}  // namespace nestpar::apps
