#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/csr.h"
#include "src/nested/templates.h"
#include "src/simt/cpu_model.h"
#include "src/simt/device.h"

namespace nestpar::apps {

/// PageRank options (pull-style GPU implementation after [7]).
struct PageRankOptions {
  int iterations = 10;      ///< Fixed power-iteration count.
  double damping = 0.85;
};

/// GPU PageRank: each power iteration runs the rank-gather nested loop (outer
/// loop over pages, inner loop over in-neighbors) through the chosen
/// template (paper Fig. 6(b), Table II). Returns the final rank vector.
std::vector<double> run_pagerank(simt::Device& dev, const graph::Csr& g,
                                 nested::LoopTemplate tmpl,
                                 const nested::LoopParams& p = {},
                                 const PageRankOptions& opt = {});

/// Serial CPU reference, charging `timer` if given.
std::vector<double> pagerank_serial(const graph::Csr& g,
                                    const PageRankOptions& opt = {},
                                    simt::CpuTimer* timer = nullptr);

}  // namespace nestpar::apps
