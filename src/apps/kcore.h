#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/csr.h"
#include "src/nested/templates.h"
#include "src/simt/cpu_model.h"
#include "src/simt/device.h"

namespace nestpar::apps {

/// k-core decomposition (coreness of every node) by iterative peeling — a
/// third extension application for the templates: every peeling sweep is an
/// irregular nested loop whose active set shrinks over time, stressing the
/// masked-iteration path the way SSSP does but with monotonically *falling*
/// degrees. The graph must be symmetric (graph::symmetrize).
std::vector<std::uint32_t> run_kcore(simt::Device& dev, const graph::Csr& g,
                                     nested::LoopTemplate tmpl,
                                     const nested::LoopParams& p = {});

/// Serial peeling reference (bucket queue), charging `timer` if given.
std::vector<std::uint32_t> kcore_serial(const graph::Csr& g,
                                        simt::CpuTimer* timer = nullptr);

}  // namespace nestpar::apps
