#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/csr.h"
#include "src/nested/templates.h"
#include "src/simt/cpu_model.h"
#include "src/simt/device.h"

namespace nestpar::apps {

/// Connected components by min-label propagation — an extension application
/// demonstrating the templates' generality beyond the paper's benchmark set
/// (the propagation sweep is another irregular nested loop). The graph must
/// be symmetric (see graph::symmetrize); labels converge to the minimum node
/// id of each component.
std::vector<std::uint32_t> run_cc(simt::Device& dev, const graph::Csr& g,
                                  nested::LoopTemplate tmpl,
                                  const nested::LoopParams& p = {});

/// Serial union-find reference (path halving + union by id), charging
/// `timer` if given.
std::vector<std::uint32_t> cc_serial(const graph::Csr& g,
                                     simt::CpuTimer* timer = nullptr);

/// Number of distinct components in a label vector.
std::uint32_t count_components(const std::vector<std::uint32_t>& labels);

}  // namespace nestpar::apps
