#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/csr.h"
#include "src/nested/templates.h"
#include "src/simt/cpu_model.h"
#include "src/simt/device.h"

namespace nestpar::apps {

/// Betweenness-centrality options. The paper computes BC over all sources of
/// the (small) Wiki-Vote graph; `num_sources == 0` means all sources, any
/// other value samples that many evenly spaced sources (a standard
/// approximation that keeps large runs tractable — see DESIGN.md).
struct BcOptions {
  std::uint32_t num_sources = 0;
};

/// GPU betweenness centrality after Sariyuce et al. [6]: per source, a
/// level-synchronous shortest-path-counting BFS (forward) and a dependency
/// accumulation sweep (backward). Both phases are irregular nested loops run
/// through the chosen template (paper Fig. 6(a), Table II).
std::vector<double> run_bc(simt::Device& dev, const graph::Csr& g,
                           nested::LoopTemplate tmpl,
                           const nested::LoopParams& p = {},
                           const BcOptions& opt = {});

/// Serial Brandes reference, charging `timer` if given.
std::vector<double> bc_serial(const graph::Csr& g, const BcOptions& opt = {},
                              simt::CpuTimer* timer = nullptr);

}  // namespace nestpar::apps
