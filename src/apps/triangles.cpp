#include "src/apps/triangles.h"

#include <stdexcept>
#include <vector>

#include "src/nested/workload.h"

namespace nestpar::apps {

namespace {

using simt::LaneCtx;

/// Count common neighbors w of (v, u) with w > u, merging the two sorted
/// lists and charging one load per advanced cursor — triangles {v<u<w}.
template <class Charge>
std::uint64_t oriented_intersection(const graph::Csr& g, std::uint32_t v,
                                    std::uint32_t u, Charge&& charge) {
  const auto a = g.neighbors(v);
  const auto b = g.neighbors(u);
  std::size_t i = 0, j = 0;
  std::uint64_t count = 0;
  while (i < a.size() && j < b.size()) {
    charge(&a[i], &b[j]);
    if (a[i] <= u) {  // Only w > u close an oriented triangle.
      ++i;
      continue;
    }
    if (b[j] <= u) {
      ++j;
      continue;
    }
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

class TriangleWorkload final : public nested::NestedLoopWorkload {
 public:
  TriangleWorkload(const graph::Csr& g, std::uint64_t* per_node)
      : g_(&g), per_node_(per_node) {}

  std::int64_t size() const override { return g_->num_nodes(); }
  std::uint32_t inner_size(std::int64_t i) const override {
    return g_->degree(static_cast<std::uint32_t>(i));
  }
  void load_outer(LaneCtx& t, std::int64_t i) const override {
    const auto v = static_cast<std::uint32_t>(i);
    t.ld(&g_->row_offsets[v]);
    t.ld(&g_->row_offsets[v + 1]);
  }
  double body(LaneCtx& t, std::int64_t i, std::uint32_t j) const override {
    const auto v = static_cast<std::uint32_t>(i);
    const std::size_t e = g_->row_offsets[v] + j;
    const std::uint32_t u = t.ld(&g_->col_indices[e]);
    if (u <= v) return 0.0;  // Orientation: count at the smallest vertex.
    t.compute(1);
    return static_cast<double>(oriented_intersection(
        *g_, v, u, [&t](const std::uint32_t* pa, const std::uint32_t* pb) {
          t.ld(pa);
          t.ld(pb);
          t.compute(2);
        }));
  }
  void commit(LaneCtx& t, std::int64_t i, double value) const override {
    t.st(&per_node_[static_cast<std::size_t>(i)],
         static_cast<std::uint64_t>(value));
  }
  const char* name() const override { return "triangles"; }

 private:
  const graph::Csr* g_;
  std::uint64_t* per_node_;
};

}  // namespace

std::uint64_t run_triangle_count(simt::Device& dev, const graph::Csr& g,
                                 nested::LoopTemplate tmpl,
                                 const nested::LoopParams& p) {
  std::vector<std::uint64_t> per_node(g.num_nodes(), 0);
  TriangleWorkload w(g, per_node.data());
  nested::run_nested_loop(
      dev, w, nested::LoopRun{.tmpl = tmpl, .params = p});
  std::uint64_t total = 0;
  for (const std::uint64_t c : per_node) total += c;
  return total;
}

std::uint64_t triangle_count_serial(const graph::Csr& g,
                                    simt::CpuTimer* timer) {
  std::uint64_t total = 0;
  const auto charge = [timer](const std::uint32_t* pa,
                              const std::uint32_t* pb) {
    if (timer != nullptr) {
      timer->ld(pa);
      timer->ld(pb);
      timer->compute(2);
    }
  };
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t u : g.neighbors(v)) {
      if (timer != nullptr) {
        timer->ld(&u);
        timer->compute(1);
      }
      if (u > v) total += oriented_intersection(g, v, u, charge);
    }
  }
  return total;
}

}  // namespace nestpar::apps
