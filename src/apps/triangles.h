#pragma once

#include <cstdint>

#include "src/graph/csr.h"
#include "src/nested/templates.h"
#include "src/simt/cpu_model.h"
#include "src/simt/device.h"

namespace nestpar::apps {

/// Triangle counting — a *reducing* irregular nested loop extension app:
/// the outer loop walks nodes, the inner loop walks neighbors, and each
/// inner iteration intersects two sorted adjacency lists (so per-inner-
/// iteration work is itself irregular — a stress case for the templates).
///
/// The graph must be symmetric with sorted adjacency lists
/// (graph::symmetrize produces both). Each triangle {a<b<c} is counted once
/// at its smallest vertex.
std::uint64_t run_triangle_count(simt::Device& dev, const graph::Csr& g,
                                 nested::LoopTemplate tmpl,
                                 const nested::LoopParams& p = {});

/// Serial reference (same orientation), charging `timer` if given.
std::uint64_t triangle_count_serial(const graph::Csr& g,
                                    simt::CpuTimer* timer = nullptr);

}  // namespace nestpar::apps
