#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "src/graph/csr.h"
#include "src/rec/tree_traversal.h"
#include "src/simt/cpu_model.h"
#include "src/simt/device.h"

namespace nestpar::apps {

inline constexpr std::uint32_t kBfsUnreached =
    std::numeric_limits<std::uint32_t>::max();

/// Tuning for the recursive BFS variants (paper Fig. 9).
struct BfsRecOptions {
  int rec_block_size = 64;
  /// 1 = default child stream per block; 2 adds one extra stream per block
  /// (the paper's "-stream" variants; more streams only added overhead).
  int streams_per_block = 1;
  int max_grid_blocks = 65535;
};

/// Flat GPU BFS: level-synchronous thread-mapped traversal after [5] — the
/// work-efficient code variant with no atomics. Returns per-node levels.
std::vector<std::uint32_t> bfs_flat_gpu(simt::Device& dev,
                                        const graph::Csr& g,
                                        std::uint32_t src,
                                        int block_size = 192);

/// Recursive (unordered [11]) GPU BFS using the paper's naive or hierarchical
/// recursion template: traversing a node recursively traverses neighbors
/// whose level decreased. Not work-efficient; requires atomics. Child grids
/// are fire-and-forget CDP launches.
std::vector<std::uint32_t> bfs_recursive_gpu(simt::Device& dev,
                                             const graph::Csr& g,
                                             std::uint32_t src,
                                             rec::RecTemplate tmpl,
                                             const BfsRecOptions& opt = {});

/// Serial level-synchronous queue BFS (the iterative CPU reference).
std::vector<std::uint32_t> bfs_serial_iterative(const graph::Csr& g,
                                                std::uint32_t src,
                                                simt::CpuTimer* timer = nullptr);

/// Serial recursive unordered BFS: depth-first revisiting (stack
/// serialization makes the traversal depth-first, as the paper notes), with
/// re-traversal whenever a node's level decreases.
std::vector<std::uint32_t> bfs_serial_recursive(const graph::Csr& g,
                                                std::uint32_t src,
                                                simt::CpuTimer* timer = nullptr);

}  // namespace nestpar::apps
