#pragma once

#include <span>
#include <vector>

#include "src/matrix/csr_matrix.h"
#include "src/nested/templates.h"
#include "src/nested/workload.h"
#include "src/simt/device.h"

namespace nestpar::apps {

/// Sparse matrix-vector product y = A*x as an irregular nested loop: the
/// outer loop walks rows, the inner loop walks the row's nonzeros, whose
/// count is the irregular f(i) (paper application [8], Figs. 4/6, Table II).
class SpmvWorkload final : public nested::NestedLoopWorkload {
 public:
  SpmvWorkload(const matrix::CsrMatrix& a, const float* x, float* y);

  std::int64_t size() const override { return a_->rows; }
  std::uint32_t inner_size(std::int64_t i) const override {
    return a_->row_nnz(static_cast<std::uint32_t>(i));
  }
  void load_outer(simt::LaneCtx& t, std::int64_t i) const override;
  double body(simt::LaneCtx& t, std::int64_t i,
              std::uint32_t j) const override;
  void commit(simt::LaneCtx& t, std::int64_t i, double value) const override;
  const char* name() const override { return "spmv"; }

 private:
  const matrix::CsrMatrix* a_;
  const float* x_;
  float* y_;
};

/// Run SpMV on the simulated GPU with the chosen template; returns y.
std::vector<float> run_spmv(simt::Device& dev, const matrix::CsrMatrix& a,
                            std::span<const float> x,
                            nested::LoopTemplate tmpl,
                            const nested::LoopParams& p = {});

}  // namespace nestpar::apps
