#include "src/apps/kcore.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "src/nested/workload.h"

namespace nestpar::apps {

namespace {

using simt::LaneCtx;

/// One peel sweep at level k: nodes marked for peeling remove themselves and
/// decrement their live neighbors' degrees. Scatter workload; the peel set
/// is snapshotted by a separate kernel so inner_size is stable per sweep.
class KcorePeelWorkload final : public nested::NestedLoopWorkload {
 public:
  KcorePeelWorkload(const graph::Csr& g, std::int32_t* deg,
                    std::uint8_t* alive, std::uint8_t* peel,
                    std::uint32_t* core, std::uint32_t k)
      : g_(&g), deg_(deg), alive_(alive), peel_(peel), core_(core), k_(k) {}

  std::int64_t size() const override { return g_->num_nodes(); }
  std::uint32_t inner_size(std::int64_t i) const override {
    return peel_[static_cast<std::size_t>(i)] != 0
               ? g_->degree(static_cast<std::uint32_t>(i))
               : 0;
  }
  void load_outer(LaneCtx& t, std::int64_t i) const override {
    const auto v = static_cast<std::uint32_t>(i);
    t.ld(&peel_[v]);
    if (peel_[v] != 0) {
      t.ld(&g_->row_offsets[v]);
      t.ld(&g_->row_offsets[v + 1]);
    }
  }
  double body(LaneCtx& t, std::int64_t i, std::uint32_t j) const override {
    const auto v = static_cast<std::uint32_t>(i);
    const std::size_t e = g_->row_offsets[v] + j;
    const std::uint32_t u = t.ld(&g_->col_indices[e]);
    if (t.ld(&alive_[u]) != 0 && peel_[u] == 0) {
      t.atomic_add(&deg_[u], std::int32_t{-1});
    }
    return 0.0;
  }
  void commit(LaneCtx& t, std::int64_t i, double) const override {
    const auto v = static_cast<std::uint32_t>(i);
    if (peel_[v] != 0) {
      t.st(&alive_[v], std::uint8_t{0});
      t.st(&peel_[v], std::uint8_t{0});
      t.st(&core_[v], k_ - 1);
    }
  }
  const char* name() const override { return "kcore"; }

 private:
  const graph::Csr* g_;
  std::int32_t* deg_;
  std::uint8_t* alive_;
  std::uint8_t* peel_;
  std::uint32_t* core_;
  std::uint32_t k_;
};

}  // namespace

std::vector<std::uint32_t> run_kcore(simt::Device& dev, const graph::Csr& g,
                                     nested::LoopTemplate tmpl,
                                     const nested::LoopParams& p) {
  const std::uint32_t n = g.num_nodes();
  std::vector<std::int32_t> deg(n);
  std::vector<std::uint8_t> alive(n, 1), peel(n, 0);
  std::vector<std::uint32_t> core(n, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    deg[v] = static_cast<std::int32_t>(g.degree(v));
  }
  auto marked = std::make_shared<int>(0);
  std::uint32_t remaining = n;

  simt::LaunchConfig mark_cfg;
  mark_cfg.block_threads = p.thread_block_size;
  mark_cfg.grid_blocks =
      simt::Device::blocks_for(n, p.thread_block_size, p.max_grid_blocks);
  mark_cfg.name = "kcore/mark";

  std::uint32_t k = 1;
  while (remaining > 0) {
    // Snapshot this sweep's peel set: live nodes whose degree fell below k.
    *marked = 0;
    dev.launch_threads(mark_cfg, [&, n, k](LaneCtx& t) {
      for (std::int64_t v = t.global_idx(); v < n; v += t.grid_threads()) {
        if (t.ld(&alive[static_cast<std::size_t>(v)]) == 0) continue;
        const std::int32_t d = t.ld(&deg[static_cast<std::size_t>(v)]);
        t.compute(1);
        if (d < static_cast<std::int32_t>(k)) {
          t.st(&peel[static_cast<std::size_t>(v)], std::uint8_t{1});
          t.st(marked.get(), 1);
        }
      }
    });
    if (*marked == 0) {
      ++k;
      if (k > n + 1) throw std::logic_error("run_kcore: failed to converge");
      continue;
    }
    std::uint32_t peeled = 0;
    for (std::uint32_t v = 0; v < n; ++v) peeled += peel[v];
    KcorePeelWorkload w(g, deg.data(), alive.data(), peel.data(), core.data(),
                        k);
    nested::run_nested_loop(
        dev, w, nested::LoopRun{.tmpl = tmpl, .params = p});
    remaining -= peeled;
  }
  return core;
}

std::vector<std::uint32_t> kcore_serial(const graph::Csr& g,
                                        simt::CpuTimer* timer) {
  const std::uint32_t n = g.num_nodes();
  std::vector<std::int32_t> deg(n);
  std::vector<std::uint8_t> alive(n, 1);
  std::vector<std::uint32_t> core(n, 0);
  std::uint32_t max_deg = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    deg[v] = static_cast<std::int32_t>(g.degree(v));
    max_deg = std::max(max_deg, g.degree(v));
  }
  // Bucket peeling: repeatedly remove a minimum-degree node.
  std::vector<std::vector<std::uint32_t>> buckets(max_deg + 1);
  for (std::uint32_t v = 0; v < n; ++v) {
    buckets[static_cast<std::size_t>(deg[v])].push_back(v);
  }
  std::uint32_t processed = 0, cur = 0;
  while (processed < n) {
    while (cur <= max_deg && buckets[cur].empty()) ++cur;
    if (cur > max_deg) break;
    const std::uint32_t v = buckets[cur].back();
    buckets[cur].pop_back();
    if (timer != nullptr) timer->compute(2);
    if (alive[v] == 0 ||
        static_cast<std::uint32_t>(std::max(deg[v], 0)) != cur) {
      continue;  // Stale bucket entry.
    }
    alive[v] = 0;
    core[v] = cur;
    if (timer != nullptr) {
      timer->st(&alive[v], std::uint8_t{0});
      timer->st(&core[v], cur);
    }
    ++processed;
    for (const std::uint32_t u : g.neighbors(v)) {
      if (timer != nullptr) timer->ld(&u);
      if (alive[u] == 0) continue;
      // Coreness of u is at least cur, so its effective degree never drops
      // below cur (the standard clamp).
      if (deg[u] > static_cast<std::int32_t>(cur)) {
        --deg[u];
        if (timer != nullptr) timer->st(&deg[u], deg[u]);
        buckets[static_cast<std::size_t>(deg[u])].push_back(u);
      }
    }
  }
  return core;
}

}  // namespace nestpar::apps
