#include "src/apps/sssp.h"

#include <deque>
#include <memory>
#include <queue>
#include <stdexcept>

#include "src/nested/workload.h"

namespace nestpar::apps {

namespace {

using simt::LaneCtx;

/// The relaxation sweep of [5]: active nodes relax all their edges with
/// atomicMin into the "updating" distance array. Scatter-style workload: all
/// work happens in `body`; `commit` clears the node's active mask.
class SsspRelaxWorkload final : public nested::NestedLoopWorkload {
 public:
  SsspRelaxWorkload(const graph::Csr& g, const float* dist, float* updating,
                    std::uint8_t* mask)
      : g_(&g), dist_(dist), updating_(updating), mask_(mask) {}

  std::int64_t size() const override { return g_->num_nodes(); }

  std::uint32_t inner_size(std::int64_t i) const override {
    return mask_[static_cast<std::size_t>(i)] != 0
               ? g_->degree(static_cast<std::uint32_t>(i))
               : 0;
  }

  void load_outer(LaneCtx& t, std::int64_t i) const override {
    const auto v = static_cast<std::uint32_t>(i);
    t.ld(&mask_[v]);
    if (mask_[v] != 0) {
      t.ld(&dist_[v]);
      t.ld(&g_->row_offsets[v]);
      t.ld(&g_->row_offsets[v + 1]);
    }
  }

  double body(LaneCtx& t, std::int64_t i, std::uint32_t j) const override {
    const auto v = static_cast<std::uint32_t>(i);
    const std::size_t e = g_->row_offsets[v] + j;
    const std::uint32_t n = t.ld(&g_->col_indices[e]);
    const float w = g_->weighted() ? t.ld(&g_->weights[e]) : 1.0f;
    t.compute(1);
    t.atomic_min(&updating_[n], dist_[v] + w);
    return 0.0;
  }

  void commit(LaneCtx& t, std::int64_t i, double) const override {
    const auto v = static_cast<std::uint32_t>(i);
    if (mask_[v] != 0) t.st(&mask_[v], std::uint8_t{0});
  }

  const char* name() const override { return "sssp"; }

 private:
  const graph::Csr* g_;
  const float* dist_;
  float* updating_;
  std::uint8_t* mask_;
};

}  // namespace

SsspResult run_sssp(simt::Device& dev, const graph::Csr& g, std::uint32_t src,
                    nested::LoopTemplate tmpl, const nested::LoopParams& p) {
  const std::uint32_t n = g.num_nodes();
  if (src >= n) throw std::invalid_argument("run_sssp: source out of range");

  SsspResult res;
  res.dist.assign(n, kInfDistance);
  std::vector<float> updating(n, kInfDistance);
  std::vector<std::uint8_t> mask(n, 0);
  res.dist[src] = 0.0f;
  updating[src] = 0.0f;
  mask[src] = 1;

  SsspRelaxWorkload w(g, res.dist.data(), updating.data(), mask.data());

  auto changed = std::make_shared<int>(1);
  simt::LaunchConfig update_cfg;
  update_cfg.block_threads = p.thread_block_size;
  update_cfg.grid_blocks =
      simt::Device::blocks_for(n, p.thread_block_size, p.max_grid_blocks);
  update_cfg.name = "sssp/update";

  while (*changed != 0) {
    *changed = 0;
    nested::run_nested_loop(
        dev, w, nested::LoopRun{.tmpl = tmpl, .params = p});
    // Update kernel of [5]: promote improved tentative distances and
    // re-activate their nodes. Identical for every template.
    dev.launch_threads(update_cfg, [&, n](LaneCtx& t) {
      for (std::int64_t v = t.global_idx(); v < n; v += t.grid_threads()) {
        const float u = t.ld(&updating[static_cast<std::size_t>(v)]);
        const float c = t.ld(&res.dist[static_cast<std::size_t>(v)]);
        if (u < c) {
          t.st(&res.dist[static_cast<std::size_t>(v)], u);
          t.st(&mask[static_cast<std::size_t>(v)], std::uint8_t{1});
          t.st(changed.get(), 1);
        } else if (u != c) {
          t.st(&updating[static_cast<std::size_t>(v)], c);
        }
      }
    });
    ++res.iterations;
    if (res.iterations > static_cast<int>(n) + 1) {
      throw std::logic_error("run_sssp: failed to converge");
    }
  }
  return res;
}

std::vector<float> sssp_serial(const graph::Csr& g, std::uint32_t src,
                               simt::CpuTimer* timer) {
  const std::uint32_t n = g.num_nodes();
  if (src >= n) throw std::invalid_argument("sssp_serial: source oob");
  std::vector<float> dist(n, kInfDistance);
  std::vector<std::uint8_t> queued(n, 0);
  std::deque<std::uint32_t> work;
  dist[src] = 0.0f;
  queued[src] = 1;
  work.push_back(src);
  while (!work.empty()) {
    const std::uint32_t v = work.front();
    work.pop_front();
    queued[v] = 0;
    const float dv = timer != nullptr ? timer->ld(&dist[v]) : dist[v];
    if (timer != nullptr) timer->compute(2);  // worklist bookkeeping
    for (std::uint32_t e = g.row_offsets[v]; e < g.row_offsets[v + 1]; ++e) {
      const std::uint32_t u =
          timer != nullptr ? timer->ld(&g.col_indices[e]) : g.col_indices[e];
      const float w = g.weighted()
                          ? (timer != nullptr ? timer->ld(&g.weights[e])
                                              : g.weights[e])
                          : 1.0f;
      const float nd = dv + w;
      const float old = timer != nullptr ? timer->ld(&dist[u]) : dist[u];
      if (timer != nullptr) timer->compute(2);
      if (nd < old) {
        if (timer != nullptr) {
          timer->st(&dist[u], nd);
        } else {
          dist[u] = nd;
        }
        if (queued[u] == 0) {
          queued[u] = 1;
          work.push_back(u);
        }
      }
    }
  }
  return dist;
}

std::vector<float> sssp_serial_dijkstra(const graph::Csr& g, std::uint32_t src,
                                        simt::CpuTimer* timer) {
  const std::uint32_t n = g.num_nodes();
  if (src >= n) throw std::invalid_argument("sssp_serial: source oob");
  std::vector<float> dist(n, kInfDistance);
  dist[src] = 0.0f;
  using Entry = std::pair<float, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0f, src);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (timer != nullptr) timer->compute(4);  // heap pop bookkeeping
    if (d > dist[v]) continue;
    const std::uint32_t begin = g.row_offsets[v];
    const std::uint32_t end = g.row_offsets[v + 1];
    for (std::uint32_t e = begin; e < end; ++e) {
      const std::uint32_t u =
          timer != nullptr ? timer->ld(&g.col_indices[e]) : g.col_indices[e];
      const float w = g.weighted()
                          ? (timer != nullptr ? timer->ld(&g.weights[e])
                                              : g.weights[e])
                          : 1.0f;
      const float nd = d + w;
      const float old = timer != nullptr ? timer->ld(&dist[u]) : dist[u];
      if (timer != nullptr) timer->compute(2);
      if (nd < old) {
        if (timer != nullptr) {
          timer->st(&dist[u], nd);
          timer->compute(6);  // heap push
        } else {
          dist[u] = nd;
        }
        heap.emplace(nd, u);
      }
    }
  }
  return dist;
}

}  // namespace nestpar::apps
