#include "src/apps/bc.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>

#include "src/nested/workload.h"

namespace nestpar::apps {

namespace {

using simt::LaneCtx;

constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();

/// Forward phase of [6] at BFS depth `level`: nodes on the current frontier
/// discover neighbors and accumulate shortest-path counts (sigma). Scatter
/// workload (atomics in `body`).
class BcForwardWorkload final : public nested::NestedLoopWorkload {
 public:
  BcForwardWorkload(const graph::Csr& g, std::uint32_t* depth, double* sigma,
                    std::uint32_t level, int* changed)
      : g_(&g), depth_(depth), sigma_(sigma), level_(level),
        changed_(changed) {}

  std::int64_t size() const override { return g_->num_nodes(); }
  std::uint32_t inner_size(std::int64_t i) const override {
    return depth_[static_cast<std::size_t>(i)] == level_
               ? g_->degree(static_cast<std::uint32_t>(i))
               : 0;
  }
  void load_outer(LaneCtx& t, std::int64_t i) const override {
    const auto v = static_cast<std::uint32_t>(i);
    t.ld(&depth_[v]);
    if (depth_[v] == level_) {
      t.ld(&sigma_[v]);
      t.ld(&g_->row_offsets[v]);
      t.ld(&g_->row_offsets[v + 1]);
    }
  }
  double body(LaneCtx& t, std::int64_t i, std::uint32_t j) const override {
    const auto v = static_cast<std::uint32_t>(i);
    const std::size_t e = g_->row_offsets[v] + j;
    const std::uint32_t n = t.ld(&g_->col_indices[e]);
    std::uint32_t dn = t.ld(&depth_[n]);
    if (dn == kUnreached) {
      t.atomic_cas(&depth_[n], kUnreached, level_ + 1);
      dn = depth_[n];
      t.st(changed_, 1);
    }
    if (dn == level_ + 1) {
      t.atomic_add(&sigma_[n], sigma_[v]);
    }
    return 0.0;
  }
  void commit(LaneCtx&, std::int64_t, double) const override {}
  const char* name() const override { return "bc-forward"; }

 private:
  const graph::Csr* g_;
  std::uint32_t* depth_;
  double* sigma_;
  std::uint32_t level_;
  int* changed_;
};

/// Backward phase of [6] at depth `level`: dependency accumulation — a
/// reducing workload (delta[i] committed once per node).
class BcBackwardWorkload final : public nested::NestedLoopWorkload {
 public:
  BcBackwardWorkload(const graph::Csr& g, const std::uint32_t* depth,
                     const double* sigma, double* delta, std::uint32_t level)
      : g_(&g), depth_(depth), sigma_(sigma), delta_(delta), level_(level) {}

  std::int64_t size() const override { return g_->num_nodes(); }
  std::uint32_t inner_size(std::int64_t i) const override {
    return depth_[static_cast<std::size_t>(i)] == level_
               ? g_->degree(static_cast<std::uint32_t>(i))
               : 0;
  }
  void load_outer(LaneCtx& t, std::int64_t i) const override {
    const auto v = static_cast<std::uint32_t>(i);
    t.ld(&depth_[v]);
    if (depth_[v] == level_) {
      t.ld(&sigma_[v]);
      t.ld(&g_->row_offsets[v]);
      t.ld(&g_->row_offsets[v + 1]);
    }
  }
  double body(LaneCtx& t, std::int64_t i, std::uint32_t j) const override {
    const auto v = static_cast<std::uint32_t>(i);
    const std::size_t e = g_->row_offsets[v] + j;
    const std::uint32_t n = t.ld(&g_->col_indices[e]);
    const std::uint32_t dn = t.ld(&depth_[n]);
    if (dn != level_ + 1) return 0.0;
    const double sn = t.ld(&sigma_[n]);
    const double dln = t.ld(&delta_[n]);
    t.compute(3);
    return sn > 0.0 ? sigma_[v] / sn * (1.0 + dln) : 0.0;
  }
  void commit(LaneCtx& t, std::int64_t i, double value) const override {
    if (depth_[static_cast<std::size_t>(i)] == level_) {
      t.st(&delta_[static_cast<std::size_t>(i)], value);
    }
  }
  const char* name() const override { return "bc-backward"; }

 private:
  const graph::Csr* g_;
  const std::uint32_t* depth_;
  const double* sigma_;
  double* delta_;
  std::uint32_t level_;
};

std::vector<std::uint32_t> pick_sources(std::uint32_t n,
                                        std::uint32_t num_sources) {
  std::vector<std::uint32_t> sources;
  if (num_sources == 0 || num_sources >= n) {
    sources.resize(n);
    for (std::uint32_t v = 0; v < n; ++v) sources[v] = v;
  } else {
    const double stride = static_cast<double>(n) / num_sources;
    for (std::uint32_t k = 0; k < num_sources; ++k) {
      sources.push_back(static_cast<std::uint32_t>(k * stride));
    }
  }
  return sources;
}

}  // namespace

std::vector<double> run_bc(simt::Device& dev, const graph::Csr& g,
                           nested::LoopTemplate tmpl,
                           const nested::LoopParams& p, const BcOptions& opt) {
  const std::uint32_t n = g.num_nodes();
  if (n == 0) return {};
  std::vector<double> bc(n, 0.0);
  std::vector<std::uint32_t> depth(n);
  std::vector<double> sigma(n), delta(n);
  auto changed = std::make_shared<int>(0);

  simt::LaunchConfig acc_cfg;
  acc_cfg.block_threads = p.thread_block_size;
  acc_cfg.grid_blocks =
      simt::Device::blocks_for(n, p.thread_block_size, p.max_grid_blocks);
  acc_cfg.name = "bc/accumulate";

  for (const std::uint32_t s : pick_sources(n, opt.num_sources)) {
    std::fill(depth.begin(), depth.end(), kUnreached);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    depth[s] = 0;
    sigma[s] = 1.0;

    // Forward: level-synchronous shortest-path counting.
    std::uint32_t level = 0;
    *changed = 1;
    while (*changed != 0) {
      *changed = 0;
      BcForwardWorkload fw(g, depth.data(), sigma.data(), level, changed.get());
      nested::run_nested_loop(
          dev, fw, nested::LoopRun{.tmpl = tmpl, .params = p});
      ++level;
    }

    // Backward: dependency accumulation from the deepest level.
    for (std::uint32_t l = level; l-- > 0;) {
      BcBackwardWorkload bw(g, depth.data(), sigma.data(), delta.data(), l);
      nested::run_nested_loop(
          dev, bw, nested::LoopRun{.tmpl = tmpl, .params = p});
    }

    dev.launch_threads(acc_cfg, [&, s, n](LaneCtx& t) {
      for (std::int64_t v = t.global_idx(); v < n; v += t.grid_threads()) {
        if (v == s) continue;
        const double d = t.ld(&delta[static_cast<std::size_t>(v)]);
        if (d != 0.0) {
          const double cur = t.ld(&bc[static_cast<std::size_t>(v)]);
          t.compute(1);
          t.st(&bc[static_cast<std::size_t>(v)], cur + d);
        }
      }
    });
  }
  return bc;
}

std::vector<double> bc_serial(const graph::Csr& g, const BcOptions& opt,
                              simt::CpuTimer* timer) {
  const std::uint32_t n = g.num_nodes();
  std::vector<double> bc(n, 0.0);
  std::vector<std::uint32_t> depth(n);
  std::vector<double> sigma(n), delta(n);
  std::vector<std::uint32_t> order;
  order.reserve(n);

  for (const std::uint32_t s : pick_sources(n, opt.num_sources)) {
    std::fill(depth.begin(), depth.end(), kUnreached);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    order.clear();
    depth[s] = 0;
    sigma[s] = 1.0;
    order.push_back(s);

    // BFS in visitation order (Brandes' stack is this order reversed).
    for (std::size_t head = 0; head < order.size(); ++head) {
      const std::uint32_t v = order[head];
      for (std::uint32_t e = g.row_offsets[v]; e < g.row_offsets[v + 1]; ++e) {
        const std::uint32_t u =
            timer != nullptr ? timer->ld(&g.col_indices[e]) : g.col_indices[e];
        if (timer != nullptr) timer->compute(1);
        if (depth[u] == kUnreached) {
          depth[u] = depth[v] + 1;
          if (timer != nullptr) timer->st(&depth[u], depth[u]);
          order.push_back(u);
        }
        if (depth[u] == depth[v] + 1) {
          sigma[u] += sigma[v];
          if (timer != nullptr) timer->st(&sigma[u], sigma[u]);
        }
      }
    }
    for (std::size_t k = order.size(); k-- > 0;) {
      const std::uint32_t v = order[k];
      for (std::uint32_t e = g.row_offsets[v]; e < g.row_offsets[v + 1]; ++e) {
        const std::uint32_t u =
            timer != nullptr ? timer->ld(&g.col_indices[e]) : g.col_indices[e];
        if (depth[u] == depth[v] + 1 && sigma[u] > 0.0) {
          if (timer != nullptr) timer->compute(3);
          delta[v] += sigma[v] / sigma[u] * (1.0 + delta[u]);
        }
      }
      if (timer != nullptr) timer->st(&delta[v], delta[v]);
      if (v != s) bc[v] += delta[v];
    }
  }
  return bc;
}

}  // namespace nestpar::apps
