#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "src/graph/csr.h"
#include "src/nested/templates.h"
#include "src/simt/cpu_model.h"
#include "src/simt/device.h"

namespace nestpar::apps {

inline constexpr float kInfDistance = std::numeric_limits<float>::infinity();

/// Result of an SSSP run: distances plus the relaxation-sweep count.
struct SsspResult {
  std::vector<float> dist;
  int iterations = 0;
};

/// Single-source shortest paths after Harish & Narayanan [5]: a mask-driven
/// Bellman-Ford whose relaxation kernel is the paper's flagship irregular
/// nested loop (Fig. 5, Table I). Every sweep runs the relaxation through the
/// chosen parallelization template, followed by a plain thread-mapped update
/// kernel (identical across templates, as in the paper).
SsspResult run_sssp(simt::Device& dev, const graph::Csr& g, std::uint32_t src,
                    nested::LoopTemplate tmpl,
                    const nested::LoopParams& p = {});

/// Serial CPU reference: worklist Bellman-Ford (SPFA) — the natural serial
/// counterpart of the GPU mask-driven relaxation and the CPU baseline used
/// for the paper's speedup figures. Charges `timer` if given.
std::vector<float> sssp_serial(const graph::Csr& g, std::uint32_t src,
                               simt::CpuTimer* timer = nullptr);

/// Serial Dijkstra (binary heap) — an independent oracle used by the tests
/// to validate both the GPU variants and the SPFA reference.
std::vector<float> sssp_serial_dijkstra(const graph::Csr& g, std::uint32_t src,
                                        simt::CpuTimer* timer = nullptr);

}  // namespace nestpar::apps
