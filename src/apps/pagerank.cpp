#include "src/apps/pagerank.h"

#include <stdexcept>

#include "src/nested/workload.h"

namespace nestpar::apps {

namespace {

using simt::LaneCtx;

/// One power iteration's rank gather: for page i, sum rank/outdegree over its
/// in-neighbors (inner loop over the transpose graph's row — irregular f(i)).
class PageRankWorkload final : public nested::NestedLoopWorkload {
 public:
  PageRankWorkload(const graph::Csr& gt, const std::uint32_t* outdeg,
                   const double* rank_old, double* rank_new, double damping)
      : gt_(&gt),
        outdeg_(outdeg),
        rank_old_(rank_old),
        rank_new_(rank_new),
        damping_(damping),
        base_((1.0 - damping) / gt.num_nodes()) {}

  std::int64_t size() const override { return gt_->num_nodes(); }
  std::uint32_t inner_size(std::int64_t i) const override {
    return gt_->degree(static_cast<std::uint32_t>(i));
  }
  void load_outer(LaneCtx& t, std::int64_t i) const override {
    const auto v = static_cast<std::uint32_t>(i);
    t.ld(&gt_->row_offsets[v]);
    t.ld(&gt_->row_offsets[v + 1]);
  }
  double body(LaneCtx& t, std::int64_t i, std::uint32_t j) const override {
    const auto v = static_cast<std::uint32_t>(i);
    const std::size_t e = gt_->row_offsets[v] + j;
    const std::uint32_t u = t.ld(&gt_->col_indices[e]);
    const double r = t.ld(&rank_old_[u]);
    const std::uint32_t d = t.ld(&outdeg_[u]);
    t.compute(2);
    return d > 0 ? r / d : 0.0;
  }
  void commit(LaneCtx& t, std::int64_t i, double value) const override {
    t.compute(2);
    t.st(&rank_new_[static_cast<std::size_t>(i)], base_ + damping_ * value);
  }
  const char* name() const override { return "pagerank"; }

 private:
  const graph::Csr* gt_;
  const std::uint32_t* outdeg_;
  const double* rank_old_;
  double* rank_new_;
  double damping_;
  double base_;
};

std::vector<std::uint32_t> out_degrees(const graph::Csr& g) {
  std::vector<std::uint32_t> d(g.num_nodes());
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) d[v] = g.degree(v);
  return d;
}

}  // namespace

std::vector<double> run_pagerank(simt::Device& dev, const graph::Csr& g,
                                 nested::LoopTemplate tmpl,
                                 const nested::LoopParams& p,
                                 const PageRankOptions& opt) {
  if (opt.iterations < 1) throw std::invalid_argument("pagerank iterations");
  const std::uint32_t n = g.num_nodes();
  const graph::Csr gt = graph::transpose(g);
  const std::vector<std::uint32_t> outdeg = out_degrees(g);
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < opt.iterations; ++it) {
    PageRankWorkload w(gt, outdeg.data(), rank.data(), next.data(),
                       opt.damping);
    nested::run_nested_loop(
        dev, w, nested::LoopRun{.tmpl = tmpl, .params = p});
    rank.swap(next);
  }
  return rank;
}

std::vector<double> pagerank_serial(const graph::Csr& g,
                                    const PageRankOptions& opt,
                                    simt::CpuTimer* timer) {
  const std::uint32_t n = g.num_nodes();
  const graph::Csr gt = graph::transpose(g);
  const std::vector<std::uint32_t> outdeg = out_degrees(g);
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> next(n, 0.0);
  const double base = (1.0 - opt.damping) / n;
  for (int it = 0; it < opt.iterations; ++it) {
    for (std::uint32_t v = 0; v < n; ++v) {
      double sum = 0.0;
      for (std::uint32_t e = gt.row_offsets[v]; e < gt.row_offsets[v + 1];
           ++e) {
        const std::uint32_t u =
            timer != nullptr ? timer->ld(&gt.col_indices[e]) : gt.col_indices[e];
        const double r = timer != nullptr ? timer->ld(&rank[u]) : rank[u];
        const std::uint32_t d =
            timer != nullptr ? timer->ld(&outdeg[u]) : outdeg[u];
        if (timer != nullptr) timer->compute(2);
        sum += d > 0 ? r / d : 0.0;
      }
      const double val = base + opt.damping * sum;
      if (timer != nullptr) {
        timer->compute(2);
        timer->st(&next[v], val);
      } else {
        next[v] = val;
      }
    }
    rank.swap(next);
  }
  return rank;
}

}  // namespace nestpar::apps
