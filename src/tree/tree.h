#pragma once

#include <cstdint>
#include <utility>
#include <span>
#include <vector>

namespace nestpar::tree {

/// Rooted tree in children-CSR layout (node 0 is the root). Nodes are
/// numbered in BFS order, so `level` is monotone in the node id.
struct Tree {
  std::vector<std::uint32_t> child_offsets;  ///< Size num_nodes()+1.
  std::vector<std::uint32_t> children;       ///< Concatenated child lists.
  std::vector<std::uint32_t> parent;         ///< parent[0] == kNoParent.
  std::vector<std::uint32_t> level;          ///< Root has level 0.

  static constexpr std::uint32_t kNoParent = 0xffffffffu;

  std::uint32_t num_nodes() const {
    return child_offsets.empty()
               ? 0
               : static_cast<std::uint32_t>(child_offsets.size() - 1);
  }
  std::uint32_t num_children(std::uint32_t v) const {
    return child_offsets[v + 1] - child_offsets[v];
  }
  std::span<const std::uint32_t> child_list(std::uint32_t v) const {
    return {children.data() + child_offsets[v], num_children(v)};
  }
  bool is_leaf(std::uint32_t v) const { return num_children(v) == 0; }
  std::uint32_t max_level() const;

  /// Nodes are BFS-ordered, so each level is one contiguous id range:
  /// returns [first, last) of level `l` (empty range if the level is absent).
  std::pair<std::uint32_t, std::uint32_t> level_range(std::uint32_t l) const;

  /// Structural invariants: consistent offsets, parent/child agreement,
  /// BFS-ordered levels. Throws std::invalid_argument.
  void validate() const;
};

/// Parameters of the paper's synthetic tree generator (§III.C): all non-leaf
/// nodes have `outdegree` children; a node at depth < `depth` becomes a
/// non-leaf with probability rho = (1/2)^sparsity. sparsity=0 gives a full
/// regular tree; larger sparsity gives increasingly irregular trees.
struct TreeParams {
  int depth = 4;        ///< Levels below the root.
  int outdegree = 32;   ///< Children per non-leaf node.
  int sparsity = 0;     ///< rho = (1/2)^sparsity.
};

/// Generate a tree per `params`, deterministic in `seed`. The root always
/// has children (so the tree is never a single node unless depth == 0).
Tree generate_tree(const TreeParams& params, std::uint64_t seed);

}  // namespace nestpar::tree
