#include "src/tree/tree.h"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <string>

namespace nestpar::tree {

std::uint32_t Tree::max_level() const {
  std::uint32_t m = 0;
  for (std::uint32_t l : level) m = std::max(m, l);
  return m;
}

std::pair<std::uint32_t, std::uint32_t> Tree::level_range(
    std::uint32_t l) const {
  const auto first = std::lower_bound(level.begin(), level.end(), l);
  const auto last = std::upper_bound(level.begin(), level.end(), l);
  return {static_cast<std::uint32_t>(first - level.begin()),
          static_cast<std::uint32_t>(last - level.begin())};
}

void Tree::validate() const {
  const std::uint32_t n = num_nodes();
  if (n == 0) throw std::invalid_argument("tree: empty");
  if (parent.size() != n || level.size() != n) {
    throw std::invalid_argument("tree: array size mismatch");
  }
  if (child_offsets.front() != 0 || child_offsets.back() != children.size()) {
    throw std::invalid_argument("tree: bad child offsets");
  }
  if (parent[0] != kNoParent || level[0] != 0) {
    throw std::invalid_argument("tree: node 0 must be the root");
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    if (child_offsets[v + 1] < child_offsets[v]) {
      throw std::invalid_argument("tree: offsets not monotone");
    }
    for (std::uint32_t c : child_list(v)) {
      if (c >= n) throw std::invalid_argument("tree: child out of range");
      if (parent[c] != v) {
        throw std::invalid_argument("tree: parent/child mismatch at " +
                                    std::to_string(c));
      }
      if (level[c] != level[v] + 1) {
        throw std::invalid_argument("tree: level mismatch at " +
                                    std::to_string(c));
      }
    }
  }
}

Tree generate_tree(const TreeParams& params, std::uint64_t seed) {
  if (params.depth < 0 || params.outdegree < 1 || params.sparsity < 0) {
    throw std::invalid_argument("generate_tree: bad parameters");
  }
  std::mt19937_64 rng(seed);
  // P(non-leaf has children) = (1/2)^sparsity, tested with `threshold` bits.
  const std::uint64_t threshold =
      params.sparsity >= 63
          ? 0
          : (std::uint64_t{1} << (63 - params.sparsity)) * 2;  // 2^64/2^s

  Tree t;
  t.child_offsets.push_back(0);
  t.parent.push_back(Tree::kNoParent);
  t.level.push_back(0);

  // BFS frontier construction; node ids are assigned in BFS order.
  std::uint32_t next_unprocessed = 0;
  while (next_unprocessed < t.parent.size()) {
    const std::uint32_t v = next_unprocessed++;
    const std::uint32_t lvl = t.level[v];
    bool expand = lvl < static_cast<std::uint32_t>(params.depth);
    if (expand && v != 0 && params.sparsity > 0) {
      expand = threshold == 0 ? false : (rng() < threshold);
    }
    if (expand) {
      for (int c = 0; c < params.outdegree; ++c) {
        const auto id = static_cast<std::uint32_t>(t.parent.size());
        t.children.push_back(id);
        t.parent.push_back(v);
        t.level.push_back(lvl + 1);
      }
    }
    t.child_offsets.push_back(static_cast<std::uint32_t>(t.children.size()));
  }
  return t;
}

}  // namespace nestpar::tree
