#include "src/matrix/csr_matrix.h"

#include <random>
#include <stdexcept>

namespace nestpar::matrix {

CsrMatrix CsrMatrix::from_graph(const nestpar::graph::Csr& g) {
  CsrMatrix m;
  m.rows = g.num_nodes();
  m.cols = g.num_nodes();
  m.row_offsets = g.row_offsets;
  m.col_indices = g.col_indices;
  if (g.weighted()) {
    m.values = g.weights;
  } else {
    m.values.assign(g.num_edges(), 1.0f);
  }
  return m;
}

void CsrMatrix::validate() const {
  if (row_offsets.size() != static_cast<std::size_t>(rows) + 1) {
    throw std::invalid_argument("csr matrix: row_offsets size mismatch");
  }
  if (!row_offsets.empty() && row_offsets.front() != 0) {
    throw std::invalid_argument("csr matrix: row_offsets[0] != 0");
  }
  for (std::size_t i = 1; i < row_offsets.size(); ++i) {
    if (row_offsets[i] < row_offsets[i - 1]) {
      throw std::invalid_argument("csr matrix: offsets not monotone");
    }
  }
  if (!row_offsets.empty() && row_offsets.back() != col_indices.size()) {
    throw std::invalid_argument("csr matrix: nnz mismatch");
  }
  if (values.size() != col_indices.size()) {
    throw std::invalid_argument("csr matrix: values size mismatch");
  }
  for (std::uint32_t c : col_indices) {
    if (c >= cols) throw std::invalid_argument("csr matrix: column oob");
  }
}

std::vector<float> spmv_serial(const CsrMatrix& a, std::span<const float> x,
                               nestpar::simt::CpuTimer* timer) {
  if (x.size() != a.cols) {
    throw std::invalid_argument("spmv: vector size mismatch");
  }
  std::vector<float> y(a.rows, 0.0f);
  for (std::uint32_t r = 0; r < a.rows; ++r) {
    float acc = 0.0f;
    const std::uint32_t begin = a.row_offsets[r];
    const std::uint32_t end = a.row_offsets[r + 1];
    for (std::uint32_t e = begin; e < end; ++e) {
      if (timer != nullptr) {
        const std::uint32_t c = timer->ld(&a.col_indices[e]);
        const float v = timer->ld(&a.values[e]);
        const float xv = timer->ld(&x[c]);
        timer->compute(2);  // multiply-add
        acc += v * xv;
      } else {
        acc += a.values[e] * x[a.col_indices[e]];
      }
    }
    if (timer != nullptr) {
      timer->st(&y[r], acc);
    } else {
      y[r] = acc;
    }
  }
  return y;
}

std::vector<float> make_dense_vector(std::uint32_t size, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<float> v(size);
  for (auto& f : v) {
    f = 0.5f + static_cast<float>(rng() >> 40) /
                   static_cast<float>(std::uint64_t{1} << 24);
  }
  return v;
}

}  // namespace nestpar::matrix
