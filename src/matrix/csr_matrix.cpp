#include "src/matrix/csr_matrix.h"

#include <random>
#include <stdexcept>
#include <string>

namespace nestpar::matrix {

CsrMatrix CsrMatrix::from_graph(const nestpar::graph::Csr& g) {
  CsrMatrix m;
  m.rows = g.num_nodes();
  m.cols = g.num_nodes();
  m.row_offsets = g.row_offsets;
  m.col_indices = g.col_indices;
  if (g.weighted()) {
    m.values = g.weights;
  } else {
    m.values.assign(g.num_edges(), 1.0f);
  }
  return m;
}

void CsrMatrix::validate() const {
  // Every message names the offending record (row, entry index, values) so
  // corrupt inputs are diagnosable without a debugger.
  if (row_offsets.size() != static_cast<std::size_t>(rows) + 1) {
    throw std::invalid_argument(
        "csr matrix: row_offsets has " + std::to_string(row_offsets.size()) +
        " entries, expected rows + 1 = " + std::to_string(rows + 1));
  }
  if (!row_offsets.empty() && row_offsets.front() != 0) {
    throw std::invalid_argument("csr matrix: row_offsets[0] is " +
                                std::to_string(row_offsets.front()) +
                                ", expected 0");
  }
  for (std::size_t i = 1; i < row_offsets.size(); ++i) {
    if (row_offsets[i] < row_offsets[i - 1]) {
      throw std::invalid_argument(
          "csr matrix: row " + std::to_string(i - 1) +
          " has descending offsets (row_offsets[" + std::to_string(i - 1) +
          "] = " + std::to_string(row_offsets[i - 1]) + ", row_offsets[" +
          std::to_string(i) + "] = " + std::to_string(row_offsets[i]) + ")");
    }
  }
  if (!row_offsets.empty() && row_offsets.back() != col_indices.size()) {
    throw std::invalid_argument(
        "csr matrix: row_offsets.back() = " +
        std::to_string(row_offsets.back()) + " but col_indices holds " +
        std::to_string(col_indices.size()) + " entries");
  }
  if (values.size() != col_indices.size()) {
    throw std::invalid_argument(
        "csr matrix: values holds " + std::to_string(values.size()) +
        " entries but col_indices holds " +
        std::to_string(col_indices.size()));
  }
  for (std::size_t e = 0; e < col_indices.size(); ++e) {
    if (col_indices[e] >= cols) {
      throw std::invalid_argument(
          "csr matrix: entry " + std::to_string(e) + " has column index " +
          std::to_string(col_indices[e]) + " >= cols = " +
          std::to_string(cols));
    }
  }
}

std::vector<float> spmv_serial(const CsrMatrix& a, std::span<const float> x,
                               nestpar::simt::CpuTimer* timer) {
  if (x.size() != a.cols) {
    throw std::invalid_argument("spmv: vector size mismatch");
  }
  std::vector<float> y(a.rows, 0.0f);
  for (std::uint32_t r = 0; r < a.rows; ++r) {
    float acc = 0.0f;
    const std::uint32_t begin = a.row_offsets[r];
    const std::uint32_t end = a.row_offsets[r + 1];
    for (std::uint32_t e = begin; e < end; ++e) {
      if (timer != nullptr) {
        const std::uint32_t c = timer->ld(&a.col_indices[e]);
        const float v = timer->ld(&a.values[e]);
        const float xv = timer->ld(&x[c]);
        timer->compute(2);  // multiply-add
        acc += v * xv;
      } else {
        acc += a.values[e] * x[a.col_indices[e]];
      }
    }
    if (timer != nullptr) {
      timer->st(&y[r], acc);
    } else {
      y[r] = acc;
    }
  }
  return y;
}

std::vector<float> make_dense_vector(std::uint32_t size, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<float> v(size);
  for (auto& f : v) {
    f = 0.5f + static_cast<float>(rng() >> 40) /
                   static_cast<float>(std::uint64_t{1} << 24);
  }
  return v;
}

}  // namespace nestpar::matrix
