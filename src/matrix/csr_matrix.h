#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/csr.h"
#include "src/simt/cpu_model.h"

namespace nestpar::matrix {

/// Sparse matrix in CSR format (the paper's SpMV input representation [8]).
struct CsrMatrix {
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  std::vector<std::uint32_t> row_offsets;  ///< Size rows+1.
  std::vector<std::uint32_t> col_indices;
  std::vector<float> values;

  std::uint64_t nnz() const { return col_indices.size(); }
  std::uint32_t row_nnz(std::uint32_t r) const {
    return row_offsets[r + 1] - row_offsets[r];
  }

  /// Adjacency matrix of a graph; edge weights if present, else 1.0.
  static CsrMatrix from_graph(const nestpar::graph::Csr& g);

  /// Structural invariants; throws std::invalid_argument.
  void validate() const;
};

/// Serial reference y = A*x. If `timer` is given, charges the CPU cost model
/// (this is the CPU side of the paper's SpMV speedup baseline).
std::vector<float> spmv_serial(const CsrMatrix& a, std::span<const float> x,
                               nestpar::simt::CpuTimer* timer = nullptr);

/// Deterministic dense vector of the given size in [0.5, 1.5).
std::vector<float> make_dense_vector(std::uint32_t size, std::uint64_t seed);

}  // namespace nestpar::matrix
