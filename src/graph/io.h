#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "src/graph/csr.h"

namespace nestpar::graph {

/// Loaders/writers for the dataset formats the paper draws from: DIMACS
/// shortest-path files (CiteSeer, [9]), SNAP whitespace edge lists
/// (Wiki-Vote, [10]) and MatrixMarket coordinate files (SpMV matrices).
/// Parsers accept streams so tests don't need temp files.
///
/// All loaders validate as they parse — negative or overflowing counts and
/// indices, out-of-range endpoints, and truncated files are rejected with an
/// IoError whose message names the format, the 1-based line number, and the
/// offending record.

/// Typed ingestion failure. Subclasses std::runtime_error so existing catch
/// sites keep working; carries the 1-based line number of the offending
/// record (0 when the error is not tied to one line, e.g. unopenable file).
class IoError : public std::runtime_error {
 public:
  IoError(const std::string& format, std::uint64_t line,
          const std::string& detail);
  std::uint64_t line() const { return line_; }

 private:
  std::uint64_t line_;
};

/// DIMACS .gr: `c` comments, one `p sp <nodes> <arcs>` line, `a <u> <v> <w>`
/// arcs (1-based). Weighted CSR.
Csr load_dimacs(std::istream& in);
Csr load_dimacs_file(const std::string& path);
void write_dimacs(std::ostream& out, const Csr& g);

/// SNAP-style edge list: `#` comments, `<u> <v>` per line (0-based).
/// `num_nodes` is inferred as max endpoint + 1.
Csr load_edge_list(std::istream& in);
Csr load_edge_list_file(const std::string& path);
void write_edge_list(std::ostream& out, const Csr& g);

/// MatrixMarket coordinate format (general real/pattern). Returns the
/// row-major CSR of the (possibly rectangular, stored as square
/// max(rows,cols)) sparse matrix; pattern entries get weight 1.
Csr load_matrix_market(std::istream& in);
Csr load_matrix_market_file(const std::string& path);

}  // namespace nestpar::graph
