#include "src/graph/io.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace nestpar::graph {

namespace {

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open file: " + path);
  return in;
}

}  // namespace

Csr load_dimacs(std::istream& in) {
  std::string line;
  std::uint32_t n = 0;
  std::uint64_t declared_arcs = 0;
  bool have_problem = false;
  std::vector<Edge> edges;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'p') {
      std::string kind;
      ls >> kind >> n >> declared_arcs;
      if (!ls || kind != "sp") {
        throw std::runtime_error("dimacs: bad problem line: " + line);
      }
      have_problem = true;
      edges.reserve(declared_arcs);
    } else if (tag == 'a') {
      if (!have_problem) {
        throw std::runtime_error("dimacs: arc before problem line");
      }
      std::uint32_t u = 0, v = 0;
      double w = 1.0;
      ls >> u >> v >> w;
      if (!ls || u < 1 || v < 1 || u > n || v > n) {
        throw std::runtime_error("dimacs: bad arc line: " + line);
      }
      edges.push_back(Edge{u - 1, v - 1, static_cast<float>(w)});
    } else {
      throw std::runtime_error("dimacs: unknown line tag: " + line);
    }
  }
  if (!have_problem) throw std::runtime_error("dimacs: missing problem line");
  return build_csr(n, edges, /*keep_weights=*/true);
}

void write_dimacs(std::ostream& out, const Csr& g) {
  out << "c nestpar graph\n";
  out << "p sp " << g.num_nodes() << " " << g.num_edges() << "\n";
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t e = g.row_offsets[v]; e < g.row_offsets[v + 1]; ++e) {
      const float w = g.weighted() ? g.weights[e] : 1.0f;
      out << "a " << (v + 1) << " " << (g.col_indices[e] + 1) << " " << w
          << "\n";
    }
  }
}

Csr load_edge_list(std::istream& in) {
  std::string line;
  std::vector<Edge> edges;
  std::uint32_t max_node = 0;
  bool any = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint32_t u = 0, v = 0;
    ls >> u >> v;
    if (!ls) throw std::runtime_error("edge list: bad line: " + line);
    edges.push_back(Edge{u, v, 1.0f});
    max_node = std::max({max_node, u, v});
    any = true;
  }
  return build_csr(any ? max_node + 1 : 0, edges);
}

void write_edge_list(std::ostream& out, const Csr& g) {
  out << "# nestpar edge list\n";
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t c : g.neighbors(v)) {
      out << v << "\t" << c << "\n";
    }
  }
}

Csr load_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line.rfind("%%MatrixMarket", 0) != 0) {
    throw std::runtime_error("matrix market: missing header");
  }
  const bool pattern = line.find("pattern") != std::string::npos;
  if (line.find("coordinate") == std::string::npos) {
    throw std::runtime_error("matrix market: only coordinate supported");
  }
  const bool symmetric = line.find("symmetric") != std::string::npos;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream hs(line);
  std::uint32_t rows = 0, cols = 0;
  std::uint64_t nnz = 0;
  hs >> rows >> cols >> nnz;
  if (!hs) throw std::runtime_error("matrix market: bad size line");
  const std::uint32_t n = std::max(rows, cols);
  std::vector<Edge> edges;
  edges.reserve(nnz * (symmetric ? 2 : 1));
  for (std::uint64_t i = 0; i < nnz; ++i) {
    if (!std::getline(in, line)) {
      throw std::runtime_error("matrix market: truncated entries");
    }
    std::istringstream ls(line);
    std::uint32_t r = 0, c = 0;
    double v = 1.0;
    ls >> r >> c;
    if (!pattern) ls >> v;
    if (!ls || r < 1 || c < 1 || r > rows || c > cols) {
      throw std::runtime_error("matrix market: bad entry: " + line);
    }
    edges.push_back(Edge{r - 1, c - 1, static_cast<float>(v)});
    if (symmetric && r != c) {
      edges.push_back(Edge{c - 1, r - 1, static_cast<float>(v)});
    }
  }
  return build_csr(n, edges, /*keep_weights=*/true);
}

Csr load_dimacs_file(const std::string& path) {
  auto in = open_or_throw(path);
  return load_dimacs(in);
}
Csr load_edge_list_file(const std::string& path) {
  auto in = open_or_throw(path);
  return load_edge_list(in);
}
Csr load_matrix_market_file(const std::string& path) {
  auto in = open_or_throw(path);
  return load_matrix_market(in);
}

}  // namespace nestpar::graph
