#include "src/graph/io.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <string_view>
#include <vector>

namespace nestpar::graph {

IoError::IoError(const std::string& format, std::uint64_t line,
                 const std::string& detail)
    : std::runtime_error(line > 0 ? format + ": line " +
                                        std::to_string(line) + ": " + detail
                                  : format + ": " + detail),
      line_(line) {}

namespace {

/// Cap for size hints taken from file headers: a corrupt "declared count"
/// must not translate into an attempted multi-gigabyte reserve.
constexpr std::uint64_t kMaxReserve = std::uint64_t{1} << 20;

/// Position of a record being parsed, for error messages.
struct LineRef {
  const char* format;
  std::uint64_t number;  ///< 1-based.
  const std::string& text;
};

[[noreturn]] void fail(const LineRef& at, const std::string& detail) {
  throw IoError(at.format, at.number, detail + " in '" + at.text + "'");
}

/// Pull the next whitespace-delimited token off `s` (empty when exhausted).
std::string_view next_token(std::string_view& s) {
  const std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string_view::npos) {
    s = {};
    return {};
  }
  std::size_t e = s.find_first_of(" \t\r", b);
  if (e == std::string_view::npos) e = s.size();
  const std::string_view tok = s.substr(b, e - b);
  s.remove_prefix(e);
  return tok;
}

/// Full-token unsigned parse: rejects negatives, non-numeric garbage, and
/// 64-bit overflow (which `istream >> unsigned` silently wraps).
std::uint64_t parse_count(std::string_view tok, const LineRef& at,
                          const char* what) {
  if (tok.empty()) fail(at, std::string("missing ") + what);
  if (tok.front() == '-') fail(at, std::string(what) + " is negative");
  std::uint64_t val = 0;
  const auto [p, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), val);
  if (ec == std::errc::result_out_of_range) {
    fail(at, std::string(what) + " overflows 64 bits");
  }
  if (ec != std::errc{} || p != tok.data() + tok.size()) {
    fail(at, std::string(what) + " is not an unsigned integer");
  }
  return val;
}

/// parse_count further capped to the 32-bit node-id space (0xFFFFFFFF is
/// reserved as a sentinel and `max_node + 1` must not wrap).
std::uint32_t parse_node(std::string_view tok, const LineRef& at,
                         const char* what) {
  const std::uint64_t v = parse_count(tok, at, what);
  if (v > 0xFFFFFFFEull) {
    fail(at, std::string(what) + " (" + std::to_string(v) +
                 ") exceeds the 32-bit node-id range");
  }
  return static_cast<std::uint32_t>(v);
}

double parse_weight(std::string_view tok, const LineRef& at,
                    const char* what) {
  if (tok.empty()) fail(at, std::string("missing ") + what);
  double val = 0.0;
  const auto [p, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), val);
  if (ec != std::errc{} || p != tok.data() + tok.size()) {
    fail(at, std::string(what) + " is not a number");
  }
  return val;
}

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("io", 0, "cannot open file: " + path);
  return in;
}

}  // namespace

Csr load_dimacs(std::istream& in) {
  std::string line;
  std::uint32_t n = 0;
  std::uint64_t declared_arcs = 0;
  std::uint64_t seen_arcs = 0;
  bool have_problem = false;
  std::vector<Edge> edges;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == 'c') continue;
    const LineRef at{"dimacs", line_no, line};
    std::string_view rest = line;
    const std::string_view tag = next_token(rest);
    if (tag == "p") {
      if (have_problem) fail(at, "duplicate problem line");
      if (next_token(rest) != "sp") fail(at, "problem kind is not 'sp'");
      n = parse_node(next_token(rest), at, "node count");
      declared_arcs = parse_count(next_token(rest), at, "arc count");
      have_problem = true;
      edges.reserve(
          static_cast<std::size_t>(std::min(declared_arcs, kMaxReserve)));
    } else if (tag == "a") {
      if (!have_problem) {
        throw IoError("dimacs", line_no, "arc before problem line");
      }
      const std::uint32_t u = parse_node(next_token(rest), at, "arc tail");
      const std::uint32_t v = parse_node(next_token(rest), at, "arc head");
      const double w = parse_weight(next_token(rest), at, "arc weight");
      if (u < 1 || u > n) {
        fail(at, "arc tail " + std::to_string(u) + " outside [1, " +
                     std::to_string(n) + "]");
      }
      if (v < 1 || v > n) {
        fail(at, "arc head " + std::to_string(v) + " outside [1, " +
                     std::to_string(n) + "]");
      }
      edges.push_back(Edge{u - 1, v - 1, static_cast<float>(w)});
      ++seen_arcs;
    } else {
      fail(at, "unknown line tag '" + std::string(tag) + "'");
    }
  }
  if (!have_problem) throw IoError("dimacs", 0, "missing problem line");
  if (seen_arcs != declared_arcs) {
    throw IoError("dimacs", line_no,
                  "problem line declares " + std::to_string(declared_arcs) +
                      " arcs but file contains " + std::to_string(seen_arcs) +
                      " (truncated or corrupt file)");
  }
  return build_csr(n, edges, /*keep_weights=*/true);
}

void write_dimacs(std::ostream& out, const Csr& g) {
  out << "c nestpar graph\n";
  out << "p sp " << g.num_nodes() << " " << g.num_edges() << "\n";
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t e = g.row_offsets[v]; e < g.row_offsets[v + 1]; ++e) {
      const float w = g.weighted() ? g.weights[e] : 1.0f;
      out << "a " << (v + 1) << " " << (g.col_indices[e] + 1) << " " << w
          << "\n";
    }
  }
}

Csr load_edge_list(std::istream& in) {
  std::string line;
  std::vector<Edge> edges;
  std::uint32_t max_node = 0;
  bool any = false;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const LineRef at{"edge list", line_no, line};
    std::string_view rest = line;
    const std::uint32_t u = parse_node(next_token(rest), at, "source node");
    const std::uint32_t v = parse_node(next_token(rest), at, "target node");
    edges.push_back(Edge{u, v, 1.0f});
    max_node = std::max({max_node, u, v});
    any = true;
  }
  return build_csr(any ? max_node + 1 : 0, edges);
}

void write_edge_list(std::ostream& out, const Csr& g) {
  out << "# nestpar edge list\n";
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t c : g.neighbors(v)) {
      out << v << "\t" << c << "\n";
    }
  }
}

Csr load_matrix_market(std::istream& in) {
  std::string line;
  std::uint64_t line_no = 1;
  if (!std::getline(in, line) || line.rfind("%%MatrixMarket", 0) != 0) {
    throw IoError("matrix market", 1, "missing %%MatrixMarket header");
  }
  const bool pattern = line.find("pattern") != std::string::npos;
  if (line.find("coordinate") == std::string::npos) {
    throw IoError("matrix market", 1, "only coordinate format supported");
  }
  const bool symmetric = line.find("symmetric") != std::string::npos;
  bool have_size = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line[0] != '%') {
      have_size = true;
      break;
    }
  }
  if (!have_size) throw IoError("matrix market", line_no, "missing size line");
  const LineRef size_at{"matrix market", line_no, line};
  std::string_view rest = line;
  const std::uint32_t rows = parse_node(next_token(rest), size_at, "row count");
  const std::uint32_t cols =
      parse_node(next_token(rest), size_at, "column count");
  const std::uint64_t nnz = parse_count(next_token(rest), size_at,
                                        "entry count");
  const std::uint32_t n = std::max(rows, cols);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(
      std::min(nnz * (symmetric ? 2 : 1), kMaxReserve)));
  for (std::uint64_t i = 0; i < nnz; ++i) {
    if (!std::getline(in, line)) {
      throw IoError("matrix market", line_no,
                    "truncated entries: size line declares " +
                        std::to_string(nnz) + ", file ends after " +
                        std::to_string(i));
    }
    ++line_no;
    const LineRef at{"matrix market", line_no, line};
    std::string_view erest = line;
    const std::uint32_t r = parse_node(next_token(erest), at, "row index");
    const std::uint32_t c = parse_node(next_token(erest), at, "column index");
    const double v =
        pattern ? 1.0 : parse_weight(next_token(erest), at, "value");
    if (r < 1 || r > rows) {
      fail(at, "row index " + std::to_string(r) + " outside [1, " +
                   std::to_string(rows) + "]");
    }
    if (c < 1 || c > cols) {
      fail(at, "column index " + std::to_string(c) + " outside [1, " +
                   std::to_string(cols) + "]");
    }
    edges.push_back(Edge{r - 1, c - 1, static_cast<float>(v)});
    if (symmetric && r != c) {
      edges.push_back(Edge{c - 1, r - 1, static_cast<float>(v)});
    }
  }
  return build_csr(n, edges, /*keep_weights=*/true);
}

Csr load_dimacs_file(const std::string& path) {
  auto in = open_or_throw(path);
  return load_dimacs(in);
}
Csr load_edge_list_file(const std::string& path) {
  auto in = open_or_throw(path);
  return load_edge_list(in);
}
Csr load_matrix_market_file(const std::string& path) {
  auto in = open_or_throw(path);
  return load_matrix_market(in);
}

}  // namespace nestpar::graph
