#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nestpar::graph {

/// Directed graph in Compressed Sparse Row format — the representation used
/// by the paper's baselines ([5] Harish & Narayanan) and by every nested-loop
/// workload here: the outer loop iterates nodes, the inner loop iterates
/// `neighbors(v)`, whose length is the irregular `f(i)` of Figure 1(a).
struct Csr {
  std::vector<std::uint32_t> row_offsets;  ///< Size num_nodes()+1.
  std::vector<std::uint32_t> col_indices;  ///< Size num_edges().
  std::vector<float> weights;              ///< Empty, or size num_edges().

  std::uint32_t num_nodes() const {
    return row_offsets.empty()
               ? 0
               : static_cast<std::uint32_t>(row_offsets.size() - 1);
  }
  std::uint64_t num_edges() const { return col_indices.size(); }

  std::uint32_t degree(std::uint32_t v) const {
    return row_offsets[v + 1] - row_offsets[v];
  }
  std::span<const std::uint32_t> neighbors(std::uint32_t v) const {
    return {col_indices.data() + row_offsets[v], degree(v)};
  }
  bool weighted() const { return !weights.empty(); }

  /// Structural invariants: monotone offsets, in-range column indices,
  /// weight array either empty or edge-sized. Throws std::invalid_argument.
  void validate() const;
};

/// One directed edge (builder input).
struct Edge {
  std::uint32_t src;
  std::uint32_t dst;
  float weight = 1.0f;
};

/// Build a CSR graph from an edge list. Edges are bucketed by source; input
/// order within a source is preserved. `num_nodes` must exceed every endpoint.
Csr build_csr(std::uint32_t num_nodes, std::span<const Edge> edges,
              bool keep_weights = false);

/// Reverse every edge (used by pull-style algorithms such as PageRank).
Csr transpose(const Csr& g);

/// Make the graph symmetric: for every edge (u,v) ensure (v,u) exists
/// (duplicates are removed). Weights are dropped. Used by undirected
/// algorithms (connected components, triangle counting).
Csr symmetrize(const Csr& g);

/// Sort every adjacency list ascending (weights are permuted along).
/// Required by algorithms that intersect neighbor lists.
void sort_neighbors(Csr& g);

/// Degree summary used to check generator calibration.
struct DegreeStats {
  std::uint32_t min_degree = 0;
  std::uint32_t max_degree = 0;
  double mean_degree = 0.0;
  double stddev_degree = 0.0;
};
DegreeStats degree_stats(const Csr& g);

}  // namespace nestpar::graph
