#pragma once

#include <cstdint>

#include "src/graph/csr.h"

namespace nestpar::graph {

/// Generators standing in for the paper's datasets (DESIGN.md §2). All are
/// deterministic for a given seed.

/// Random graph with per-node outdegree drawn uniformly from
/// [min_degree, max_degree] and uniformly random neighbors — the Figure 9
/// dataset ("node outdegree is uniformly distributed within a variable
/// range" over 50,000 nodes).
Csr generate_uniform_random(std::uint32_t num_nodes, std::uint32_t min_degree,
                            std::uint32_t max_degree, std::uint64_t seed,
                            bool weighted = false);

/// Random graph with truncated-Pareto (power-law) outdegrees calibrated so
/// the mean outdegree approximates `mean_degree`. Degree skew is the property
/// that makes the paper's nested loops irregular.
Csr generate_power_law(std::uint32_t num_nodes, std::uint32_t min_degree,
                       std::uint32_t max_degree, double mean_degree,
                       std::uint64_t seed, bool weighted = false);

/// Random graph with clamped-lognormal outdegrees calibrated so the mean
/// approximates `mean_degree`. Lognormal matches citation networks' milder
/// tail (occasional hubs, most mass near the median) better than a Pareto.
Csr generate_lognormal(std::uint32_t num_nodes, std::uint32_t min_degree,
                       std::uint32_t max_degree, double mean_degree,
                       double sigma, std::uint64_t seed,
                       bool weighted = false);

/// Regular graph: every node has exactly `degree` random neighbors.
Csr generate_regular(std::uint32_t num_nodes, std::uint32_t degree,
                     std::uint64_t seed, bool weighted = false);

/// CiteSeer-like citation network (DIMACS): 434k nodes, ~16M edges,
/// outdegree in [1, 1188] with mean 73.9 — scaled by `scale` in node count
/// (degree distribution is preserved, so edges scale proportionally).
Csr generate_citeseer_like(double scale, std::uint64_t seed,
                           bool weighted = false);

/// Wiki-Vote-like small-world network (SNAP): 7,115 nodes, ~104k edges,
/// outdegree in [0, 893] with mean 14.7.
Csr generate_wikivote_like(double scale, std::uint64_t seed,
                           bool weighted = false);

/// Kronecker/R-MAT generator (Chakrabarti et al.): 2^scale nodes,
/// edges_per_node * 2^scale edges, recursive quadrant probabilities
/// (a, b, c; d = 1-a-b-c). Produces the skewed, community-like structure
/// of real-world graphs.
Csr generate_rmat(int scale, int edges_per_node, std::uint64_t seed,
                  double a = 0.57, double b = 0.19, double c = 0.19,
                  bool weighted = false);

/// Exponent gamma of the truncated Pareto distribution whose mean over
/// [min_degree, max_degree] equals `mean_degree` (bisection; exposed for
/// tests).
double calibrate_pareto_gamma(std::uint32_t min_degree,
                              std::uint32_t max_degree, double mean_degree);

}  // namespace nestpar::graph
