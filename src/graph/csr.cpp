#include "src/graph/csr.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace nestpar::graph {

void Csr::validate() const {
  if (row_offsets.empty()) {
    throw std::invalid_argument("csr: row_offsets must have >= 1 entry");
  }
  if (row_offsets.front() != 0) {
    throw std::invalid_argument("csr: row_offsets[0] must be 0");
  }
  for (std::size_t i = 1; i < row_offsets.size(); ++i) {
    if (row_offsets[i] < row_offsets[i - 1]) {
      throw std::invalid_argument("csr: row_offsets not monotone at " +
                                  std::to_string(i));
    }
  }
  if (row_offsets.back() != col_indices.size()) {
    throw std::invalid_argument("csr: row_offsets.back() != num_edges");
  }
  const std::uint32_t n = num_nodes();
  for (std::uint32_t c : col_indices) {
    if (c >= n) {
      throw std::invalid_argument("csr: column index out of range");
    }
  }
  if (!weights.empty() && weights.size() != col_indices.size()) {
    throw std::invalid_argument("csr: weights size mismatch");
  }
}

Csr build_csr(std::uint32_t num_nodes, std::span<const Edge> edges,
              bool keep_weights) {
  Csr g;
  g.row_offsets.assign(num_nodes + 1, 0);
  for (const Edge& e : edges) {
    if (e.src >= num_nodes || e.dst >= num_nodes) {
      throw std::invalid_argument("build_csr: edge endpoint out of range");
    }
    ++g.row_offsets[e.src + 1];
  }
  for (std::uint32_t v = 0; v < num_nodes; ++v) {
    g.row_offsets[v + 1] += g.row_offsets[v];
  }
  g.col_indices.resize(edges.size());
  if (keep_weights) g.weights.resize(edges.size());
  std::vector<std::uint32_t> cursor(g.row_offsets.begin(),
                                    g.row_offsets.end() - 1);
  for (const Edge& e : edges) {
    const std::uint32_t slot = cursor[e.src]++;
    g.col_indices[slot] = e.dst;
    if (keep_weights) g.weights[slot] = e.weight;
  }
  return g;
}

Csr transpose(const Csr& g) {
  Csr t;
  const std::uint32_t n = g.num_nodes();
  t.row_offsets.assign(n + 1, 0);
  for (std::uint32_t c : g.col_indices) ++t.row_offsets[c + 1];
  for (std::uint32_t v = 0; v < n; ++v) {
    t.row_offsets[v + 1] += t.row_offsets[v];
  }
  t.col_indices.resize(g.col_indices.size());
  const bool weighted = g.weighted();
  if (weighted) t.weights.resize(g.weights.size());
  std::vector<std::uint32_t> cursor(t.row_offsets.begin(),
                                    t.row_offsets.end() - 1);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t e = g.row_offsets[v]; e < g.row_offsets[v + 1]; ++e) {
      const std::uint32_t slot = cursor[g.col_indices[e]]++;
      t.col_indices[slot] = v;
      if (weighted) t.weights[slot] = g.weights[e];
    }
  }
  return t;
}

Csr symmetrize(const Csr& g) {
  const std::uint32_t n = g.num_nodes();
  std::vector<Edge> edges;
  edges.reserve(g.num_edges() * 2);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t c : g.neighbors(v)) {
      edges.push_back(Edge{v, c, 1.0f});
      edges.push_back(Edge{c, v, 1.0f});
    }
  }
  Csr s = build_csr(n, edges);
  sort_neighbors(s);
  // Deduplicate within each (sorted) row.
  std::vector<std::uint32_t> offsets(n + 1, 0);
  std::vector<std::uint32_t> cols;
  cols.reserve(s.col_indices.size());
  for (std::uint32_t v = 0; v < n; ++v) {
    const auto nb = s.neighbors(v);
    for (std::size_t k = 0; k < nb.size(); ++k) {
      if (k == 0 || nb[k] != nb[k - 1]) cols.push_back(nb[k]);
    }
    offsets[v + 1] = static_cast<std::uint32_t>(cols.size());
  }
  s.row_offsets = std::move(offsets);
  s.col_indices = std::move(cols);
  s.weights.clear();
  return s;
}

void sort_neighbors(Csr& g) {
  const std::uint32_t n = g.num_nodes();
  if (g.weighted()) {
    std::vector<std::pair<std::uint32_t, float>> row;
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint32_t begin = g.row_offsets[v], end = g.row_offsets[v + 1];
      row.clear();
      for (std::uint32_t e = begin; e < end; ++e) {
        row.emplace_back(g.col_indices[e], g.weights[e]);
      }
      std::sort(row.begin(), row.end());
      for (std::uint32_t e = begin; e < end; ++e) {
        g.col_indices[e] = row[e - begin].first;
        g.weights[e] = row[e - begin].second;
      }
    }
  } else {
    for (std::uint32_t v = 0; v < n; ++v) {
      std::sort(g.col_indices.begin() + g.row_offsets[v],
                g.col_indices.begin() + g.row_offsets[v + 1]);
    }
  }
}

DegreeStats degree_stats(const Csr& g) {
  DegreeStats s;
  const std::uint32_t n = g.num_nodes();
  if (n == 0) return s;
  s.min_degree = g.degree(0);
  double sum = 0.0, sum2 = 0.0;
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t d = g.degree(v);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    sum += d;
    sum2 += static_cast<double>(d) * d;
  }
  s.mean_degree = sum / n;
  s.stddev_degree = std::sqrt(std::max(0.0, sum2 / n - s.mean_degree * s.mean_degree));
  return s;
}

}  // namespace nestpar::graph
