#include "src/graph/generators.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace nestpar::graph {

namespace {

/// Deterministic 64-bit RNG (mt19937_64 keeps results identical across
/// standard libraries, unlike the distributions, which we avoid).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : eng_(seed) {}
  std::uint64_t next() { return eng_(); }
  /// Uniform in [0, n).
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }
  /// Uniform double in (0, 1].
  double unit() {
    return (static_cast<double>(next() >> 11) + 1.0) / 9007199254740992.0;
  }

 private:
  std::mt19937_64 eng_;
};

Csr assemble(std::uint32_t n, const std::vector<std::uint32_t>& degrees,
             Rng& rng, bool weighted, bool degree_biased_targets = false) {
  Csr g;
  g.row_offsets.resize(n + 1);
  g.row_offsets[0] = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    g.row_offsets[v + 1] = g.row_offsets[v] + degrees[v];
  }
  const std::uint64_t m = g.row_offsets[n];
  g.col_indices.resize(m);
  if (weighted) g.weights.resize(m);
  for (std::uint64_t e = 0; e < m; ++e) {
    std::uint32_t target;
    if (degree_biased_targets && m > 0) {
      // Preferential-attachment-style: a node is cited proportionally to
      // how much it cites — real citation networks have skewed in-degrees,
      // and pull-style workloads (PageRank) depend on that skew.
      const std::uint64_t slot = rng.below(m);
      target = static_cast<std::uint32_t>(
          std::upper_bound(g.row_offsets.begin(), g.row_offsets.end(), slot) -
          g.row_offsets.begin() - 1);
    } else {
      target = static_cast<std::uint32_t>(rng.below(n));
    }
    g.col_indices[e] = target;
    if (weighted) {
      g.weights[e] = 1.0f + static_cast<float>(rng.below(99));
    }
  }
  return g;
}

/// Inverse-CDF sample of a Pareto(gamma) truncated to [lo, hi].
double truncated_pareto(double u, double lo, double hi, double gamma) {
  // CDF on [lo, hi]: F(x) = (1 - (lo/x)^g) / (1 - (lo/hi)^g).
  const double tail = 1.0 - std::pow(lo / hi, gamma);
  const double x = lo / std::pow(1.0 - u * tail, 1.0 / gamma);
  return std::min(x, hi);
}

/// Mean of the truncated Pareto via fixed quadrature (deterministic).
double truncated_pareto_mean(double lo, double hi, double gamma) {
  constexpr int kSamples = 4096;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double u = (i + 0.5) / kSamples;
    sum += truncated_pareto(u, lo, hi, gamma);
  }
  return sum / kSamples;
}

}  // namespace

double calibrate_pareto_gamma(std::uint32_t min_degree,
                              std::uint32_t max_degree, double mean_degree) {
  const double lo = std::max<double>(min_degree, 0.5);
  const double hi = max_degree;
  if (mean_degree <= lo || mean_degree >= hi) {
    throw std::invalid_argument("mean_degree must lie inside (min, max)");
  }
  // Mean decreases monotonically in gamma; bisect.
  double g_lo = 0.01, g_hi = 16.0;
  for (int it = 0; it < 80; ++it) {
    const double mid = 0.5 * (g_lo + g_hi);
    if (truncated_pareto_mean(lo, hi, mid) > mean_degree) {
      g_lo = mid;
    } else {
      g_hi = mid;
    }
  }
  return 0.5 * (g_lo + g_hi);
}

Csr generate_uniform_random(std::uint32_t num_nodes, std::uint32_t min_degree,
                            std::uint32_t max_degree, std::uint64_t seed,
                            bool weighted) {
  if (num_nodes == 0) throw std::invalid_argument("num_nodes must be > 0");
  if (min_degree > max_degree) {
    throw std::invalid_argument("min_degree > max_degree");
  }
  Rng rng(seed);
  std::vector<std::uint32_t> degrees(num_nodes);
  const std::uint64_t span = max_degree - min_degree + 1;
  for (auto& d : degrees) {
    d = min_degree + static_cast<std::uint32_t>(rng.below(span));
  }
  return assemble(num_nodes, degrees, rng, weighted);
}

Csr generate_power_law(std::uint32_t num_nodes, std::uint32_t min_degree,
                       std::uint32_t max_degree, double mean_degree,
                       std::uint64_t seed, bool weighted) {
  if (num_nodes == 0) throw std::invalid_argument("num_nodes must be > 0");
  const double gamma =
      calibrate_pareto_gamma(min_degree, max_degree, mean_degree);
  const double lo = std::max<double>(min_degree, 0.5);
  Rng rng(seed);
  std::vector<std::uint32_t> degrees(num_nodes);
  for (auto& d : degrees) {
    const double x = truncated_pareto(rng.unit(), lo, max_degree, gamma);
    d = std::clamp(static_cast<std::uint32_t>(std::lround(x)), min_degree,
                   max_degree);
  }
  return assemble(num_nodes, degrees, rng, weighted,
                  /*degree_biased_targets=*/true);
}

namespace {

/// Quantile of the standard normal via Acklam's rational approximation
/// (deterministic; good to ~1e-9, far beyond what a degree draw needs).
double normal_quantile(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425, phigh = 1 - plow;
  if (p < plow) {
    const double q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > phigh) {
    const double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  const double q = p - 0.5, r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

double clamped_lognormal(double u, double mu, double sigma, double lo,
                         double hi) {
  const double x = std::exp(mu + sigma * normal_quantile(u));
  return std::clamp(x, lo, hi);
}

double clamped_lognormal_mean(double mu, double sigma, double lo, double hi) {
  constexpr int kSamples = 4096;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    sum += clamped_lognormal((i + 0.5) / kSamples, mu, sigma, lo, hi);
  }
  return sum / kSamples;
}

}  // namespace

Csr generate_lognormal(std::uint32_t num_nodes, std::uint32_t min_degree,
                       std::uint32_t max_degree, double mean_degree,
                       double sigma, std::uint64_t seed, bool weighted) {
  if (num_nodes == 0) throw std::invalid_argument("num_nodes must be > 0");
  if (sigma <= 0.0) throw std::invalid_argument("sigma must be positive");
  const double lo = min_degree;
  const double hi = max_degree;
  if (mean_degree <= lo || mean_degree >= hi) {
    throw std::invalid_argument("mean_degree must lie inside (min, max)");
  }
  // Mean increases monotonically in mu; bisect.
  double m_lo = -4.0, m_hi = std::log(hi) + 2.0;
  for (int it = 0; it < 80; ++it) {
    const double mid = 0.5 * (m_lo + m_hi);
    if (clamped_lognormal_mean(mid, sigma, lo, hi) < mean_degree) {
      m_lo = mid;
    } else {
      m_hi = mid;
    }
  }
  const double mu = 0.5 * (m_lo + m_hi);
  Rng rng(seed);
  std::vector<std::uint32_t> degrees(num_nodes);
  for (auto& d : degrees) {
    d = static_cast<std::uint32_t>(
        std::lround(clamped_lognormal(rng.unit(), mu, sigma, lo, hi)));
  }
  return assemble(num_nodes, degrees, rng, weighted,
                  /*degree_biased_targets=*/true);
}

Csr generate_regular(std::uint32_t num_nodes, std::uint32_t degree,
                     std::uint64_t seed, bool weighted) {
  if (num_nodes == 0) throw std::invalid_argument("num_nodes must be > 0");
  Rng rng(seed);
  std::vector<std::uint32_t> degrees(num_nodes, degree);
  return assemble(num_nodes, degrees, rng, weighted);
}

Csr generate_rmat(int scale, int edges_per_node, std::uint64_t seed,
                  double a, double b, double c, bool weighted) {
  if (scale < 1 || scale > 30) throw std::invalid_argument("rmat: bad scale");
  if (edges_per_node < 1) throw std::invalid_argument("rmat: bad edge count");
  if (a <= 0 || b <= 0 || c <= 0 || a + b + c >= 1.0) {
    throw std::invalid_argument("rmat: bad quadrant probabilities");
  }
  const std::uint32_t n = 1u << scale;
  const std::uint64_t m =
      static_cast<std::uint64_t>(edges_per_node) * n;
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::uint64_t e = 0; e < m; ++e) {
    std::uint32_t src = 0, dst = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double u = rng.unit();
      src <<= 1;
      dst <<= 1;
      if (u < a) {
        // top-left quadrant
      } else if (u < a + b) {
        dst |= 1;
      } else if (u < a + b + c) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    edges.push_back(Edge{src, dst,
                         weighted ? 1.0f + static_cast<float>(rng.below(99))
                                  : 1.0f});
  }
  return build_csr(n, edges, weighted);
}

Csr generate_citeseer_like(double scale, std::uint64_t seed, bool weighted) {
  const auto n = static_cast<std::uint32_t>(434000 * scale);
  if (n < 2) throw std::invalid_argument("scale too small");
  // Lognormal tail: CiteSeer's occasional 1,188-degree hubs sit over a bulk
  // near the median, unlike a Pareto whose extreme tail would dominate every
  // warp (sigma calibrated against the paper's baseline warp efficiency).
  return generate_lognormal(n, 1, 1188, 73.9, 0.7, seed, weighted);
}

Csr generate_wikivote_like(double scale, std::uint64_t seed, bool weighted) {
  const auto n = static_cast<std::uint32_t>(7115 * scale);
  if (n < 2) throw std::invalid_argument("scale too small");
  return generate_power_law(n, 0, 893, 14.7, seed, weighted);
}

}  // namespace nestpar::graph
