#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/nested/templates.h"
#include "src/nested/workload.h"
#include "src/simt/device.h"

namespace nestpar::nested {

/// One evaluated configuration: a template (or the flattened transform) at a
/// given lbTHRES, with its modeled time.
struct TuneCandidate {
  LoopTemplate tmpl = LoopTemplate::kBaseline;
  bool flattened = false;  ///< When true, `tmpl`/`lb_threshold` are unused.
  int lb_threshold = 32;
  double model_us = 0.0;

  std::string label() const;
};

struct AutotuneOptions {
  /// Templates to consider (baseline is always evaluated as the reference).
  /// Defaults to the registry rows flagged `autotune_default` — the
  /// load-balancing templates minus dpar-naive, plus the consolidation
  /// family.
  std::vector<LoopTemplate> templates = default_autotune_templates();
  std::vector<int> thresholds = {16, 32, 64, 128, 256};
  bool include_flattened = true;
  LoopParams base_params;  ///< Block sizes etc. shared by all candidates.
};

/// Result of a tuning sweep, best-first.
struct AutotuneResult {
  TuneCandidate best;
  double baseline_us = 0.0;
  std::vector<TuneCandidate> all;  ///< Sorted ascending by model time.

  double best_speedup() const {
    return best.model_us > 0 ? baseline_us / best.model_us : 0.0;
  }
};

/// Model-driven autotuner: runs the workload under every candidate
/// configuration on the simulated device and ranks them — the decision
/// procedure the paper suggests a compiler/runtime should apply ("the
/// optimal load balancing threshold will depend on the underlying dataset
/// and algorithm", §II.B).
///
/// The workload is executed once per candidate, so its `body`/`commit` must
/// be idempotent across repeated runs (true for all pure workloads; for
/// stateful ones like SSSP sweeps, tune on a representative snapshot).
AutotuneResult autotune_nested_loop(const NestedLoopWorkload& w,
                                    const AutotuneOptions& opt = {},
                                    simt::DeviceSpec spec =
                                        simt::DeviceSpec::k20());

}  // namespace nestpar::nested
