#include "src/nested/templates.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/simt/aligned.h"
#include "src/simt/profiler.h"

namespace nestpar::nested {

using simt::BlockCtx;
using simt::Device;
using simt::Kernel;
using simt::LaneCtx;
using simt::LaunchConfig;
using simt::ThreadKernel;

std::string_view name(TemplateFamily f) {
  switch (f) {
    case TemplateFamily::kBasic: return "basic";
    case TemplateFamily::kLoadBalancing: return "load-balancing";
    case TemplateFamily::kConsolidation: return "consolidation";
  }
  return "?";
}

void LoopParams::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("LoopParams: " + what);
  };
  if (lb_threshold < 0) {
    fail("lb_threshold must be >= 0 (got " + std::to_string(lb_threshold) +
         ")");
  }
  if (thread_block_size < 1) {
    fail("thread_block_size must be positive (got " +
         std::to_string(thread_block_size) + ")");
  }
  if (block_block_size < 1) {
    fail("block_block_size must be positive (got " +
         std::to_string(block_block_size) + ")");
  }
  if (max_grid_blocks < 1) {
    fail("max_grid_blocks must be positive (got " +
         std::to_string(max_grid_blocks) + ")");
  }
  if (shared_buffer_entries < 1) {
    fail("shared_buffer_entries must be >= 1 (got " +
         std::to_string(shared_buffer_entries) + ")");
  }
  if (cons_buffer_entries < 1) {
    fail("cons_buffer_entries must be >= 1 (got " +
         std::to_string(cons_buffer_entries) + ")");
  }
  if (cons_min_descriptors < 1) {
    fail("cons_min_descriptors must be >= 1 (got " +
         std::to_string(cons_min_descriptors) + ")");
  }
}

namespace {

/// Thread-mapped processing of one outer iteration: the whole inner loop and
/// the commit run in one lane (the source of warp divergence the templates
/// are designed to remove).
void process_thread_mapped(const NestedLoopWorkload& w, LaneCtx& t,
                           std::int64_t i) {
  w.load_outer(t, i);
  const std::uint32_t f = w.inner_size(i);
  double acc = 0.0;
  for (std::uint32_t j = 0; j < f; ++j) acc += w.body(t, i, j);
  w.commit(t, i, acc);
}

/// Work list handed to block-mapped kernels. Either an explicit list of
/// outer-iteration indices (queue / delayed buffer) or the identity range
/// [0, count) for pure block mapping. Lists live in segment-aligned arrays
/// (simt::make_segment_array) so the coalescing model charges the same cost
/// no matter which host thread allocated them.
struct WorkList {
  std::shared_ptr<const std::int64_t[]> items;  ///< null = identity
  std::int64_t count = 0;

  std::int64_t get(LaneCtx& t, std::int64_t k) const {
    if (items == nullptr) return k;
    return t.ld(&items[static_cast<std::size_t>(k)]);
  }
};

/// Block-mapped kernel: block b processes work items b, b+gridDim, ... with
/// the inner loop split across the block's threads and the reduction done in
/// shared memory (one commit per iteration, from thread 0).
Kernel make_block_mapped_kernel(const NestedLoopWorkload& w, WorkList list) {
  return [&w, list = std::move(list)](BlockCtx& blk) {
    auto partial = blk.shared_array<double>(1);
    auto item = blk.shared_array<std::int64_t>(1);
    for (std::int64_t k = blk.block_idx(); k < list.count;
         k += blk.grid_dim()) {
      blk.each_thread([&](LaneCtx& t) {
        const std::int64_t i = list.get(t, k);
        if (t.thread_idx() == 0) t.sh_st(&item[0], i);
        w.load_outer(t, i);
        const std::uint32_t f = w.inner_size(i);
        double acc = 0.0;
        for (std::uint32_t j = static_cast<std::uint32_t>(t.thread_idx());
             j < f; j += static_cast<std::uint32_t>(t.block_dim())) {
          acc += w.body(t, i, j);
        }
        if (acc != 0.0) t.sh_atomic_add(&partial[0], acc);
      });
      blk.each_thread([&](LaneCtx& t) {
        if (t.thread_idx() != 0) return;
        const std::int64_t i = t.sh_ld(&item[0]);
        w.commit(t, i, t.sh_ld(&partial[0]));
        t.sh_st(&partial[0], 0.0);
      });
    }
  };
}

/// Single-iteration block kernel used by dpar-naive child launches.
Kernel make_single_iteration_kernel(const NestedLoopWorkload& w,
                                    std::int64_t i) {
  return [&w, i](BlockCtx& blk) {
    auto partial = blk.shared_array<double>(1);
    blk.each_thread([&](LaneCtx& t) {
      w.load_outer(t, i);
      const std::uint32_t f = w.inner_size(i);
      double acc = 0.0;
      for (std::uint32_t j = static_cast<std::uint32_t>(t.thread_idx()); j < f;
           j += static_cast<std::uint32_t>(t.block_dim())) {
        acc += w.body(t, i, j);
      }
      if (acc != 0.0) t.sh_atomic_add(&partial[0], acc);
    });
    blk.each_thread([&](LaneCtx& t) {
      if (t.thread_idx() == 0) w.commit(t, i, t.sh_ld(&partial[0]));
    });
  };
}

std::string kname(const NestedLoopWorkload& w, LoopTemplate tmpl,
                  const char* phase) {
  return std::string(w.name()) + "/" + std::string(name(tmpl)) + "/" + phase;
}

LaunchConfig thread_cfg(const NestedLoopWorkload& w, LoopTemplate tmpl,
                        const char* phase, std::int64_t items,
                        const LoopParams& p) {
  LaunchConfig c;
  c.block_threads = p.thread_block_size;
  c.grid_blocks = Device::blocks_for(items, p.thread_block_size,
                                     p.max_grid_blocks);
  c.name = kname(w, tmpl, phase);
  return c;
}

LaunchConfig block_cfg(const NestedLoopWorkload& w, LoopTemplate tmpl,
                       const char* phase, std::int64_t items,
                       const LoopParams& p) {
  LaunchConfig c;
  c.block_threads = p.block_block_size;
  c.grid_blocks = static_cast<int>(std::clamp<std::int64_t>(
      items, 1, p.max_grid_blocks));
  c.name = kname(w, tmpl, phase);
  return c;
}

void run_baseline(Device& dev, const NestedLoopWorkload& w,
                  const LoopParams& p) {
  const std::int64_t n = w.size();
  dev.launch_threads(
      thread_cfg(w, LoopTemplate::kBaseline, "main", n, p),
      [&w, n](LaneCtx& t) {
        for (std::int64_t i = t.global_idx(); i < n; i += t.grid_threads()) {
          process_thread_mapped(w, t, i);
        }
      });
}

void run_block_mapped(Device& dev, const NestedLoopWorkload& w,
                      const LoopParams& p) {
  WorkList list;
  list.count = w.size();
  dev.launch(block_cfg(w, LoopTemplate::kBlockMapped, "main", list.count, p),
             make_block_mapped_kernel(w, std::move(list)));
}

/// Virtual warp-centric mapping: warp k processes outer iterations
/// k, k+warps, ...; lanes stride the inner loop and reduce through a
/// per-warp shared slot (warp-synchronous, no barrier needed on hardware;
/// expressed with an explicit phase here).
void run_warp_mapped(Device& dev, const NestedLoopWorkload& w,
                     const LoopParams& p) {
  const std::int64_t n = w.size();
  LaunchConfig cfg = thread_cfg(w, LoopTemplate::kWarpMapped, "main",
                                n * 32, p);
  cfg.smem_bytes = static_cast<std::size_t>(
      (p.thread_block_size + 31) / 32 * sizeof(double));
  dev.launch(cfg, [&w, n](BlockCtx& blk) {
    const int warps_per_block = (blk.block_dim() + 31) / 32;
    auto partial = blk.shared_array<double>(
        static_cast<std::size_t>(warps_per_block));
    const std::int64_t total_warps =
        static_cast<std::int64_t>(blk.grid_dim()) * warps_per_block;
    // Each warp may own several outer iterations (grid-stride by warp);
    // phases alternate accumulate / commit once per stride round.
    const std::int64_t first_warp =
        static_cast<std::int64_t>(blk.block_idx()) * warps_per_block;
    // All warps of the block must run the same number of phases.
    std::int64_t max_rounds = 0;
    for (int wp = 0; wp < warps_per_block; ++wp) {
      std::int64_t r = 0;
      for (std::int64_t i = first_warp + wp; i < n; i += total_warps) ++r;
      max_rounds = std::max(max_rounds, r);
    }
    for (std::int64_t round = 0; round < max_rounds; ++round) {
      blk.each_thread([&](LaneCtx& t) {
        const std::int64_t i = first_warp + t.warp() + round * total_warps;
        if (i >= n) return;
        w.load_outer(t, i);
        const std::uint32_t f = w.inner_size(i);
        double acc = 0.0;
        for (std::uint32_t j = static_cast<std::uint32_t>(t.lane()); j < f;
             j += 32) {
          acc += w.body(t, i, j);
        }
        if (acc != 0.0) t.sh_atomic_add(&partial[t.warp()], acc);
      });
      blk.each_thread([&](LaneCtx& t) {
        const std::int64_t i = first_warp + t.warp() + round * total_warps;
        if (i >= n || t.lane() != 0) return;
        w.commit(t, i, t.sh_ld(&partial[t.warp()]));
        t.sh_st(&partial[t.warp()], 0.0);
      });
    }
  });
}

/// Host-side queue placement shared by dual-queue, dbuf-global and cons-grid.
///
/// The CUDA originals place each deferred iteration at the slot an
/// atomicAdd on a global counter returns — a valid but schedule-dependent
/// order. The model instead fixes one valid interleaving up front: slots in
/// ascending outer-index order, decided from inner_size before the kernel
/// runs. The kernel still executes the atomic append (so the modeled cost
/// and the final counter value are unchanged); only the *return value* is
/// replaced by the precomputed slot. This is what makes queue contents —
/// and everything downstream of them — identical across the serial and
/// parallel host engines.
///
/// Encoding: slot[i] >= 0 is a "small"/inline slot, slot[i] < 0 holds the
/// deferred slot as ~slot[i]. The kernel also branches on this sign instead
/// of re-testing inner_size, so placement stays consistent even if a
/// workload's inner_size shifts while the sweep runs.
struct QueuePlacement {
  std::shared_ptr<const std::int64_t[]> slot;
  std::int64_t small_count = 0;
  std::int64_t big_count = 0;
};

QueuePlacement build_placement(const NestedLoopWorkload& w, int lb_threshold) {
  const std::int64_t n = w.size();
  auto slot = simt::make_segment_array<std::int64_t>(
      static_cast<std::size_t>(std::max<std::int64_t>(n, 1)));
  QueuePlacement q;
  for (std::int64_t i = 0; i < n; ++i) {
    if (w.inner_size(i) > static_cast<std::uint32_t>(lb_threshold)) {
      slot[static_cast<std::size_t>(i)] = ~q.big_count++;
    } else {
      slot[static_cast<std::size_t>(i)] = q.small_count++;
    }
  }
  q.slot = std::move(slot);
  return q;
}

void run_dual_queue(Device& dev, const NestedLoopWorkload& w,
                    const LoopParams& p) {
  const std::int64_t n = w.size();
  const QueuePlacement q = build_placement(w, p.lb_threshold);
  // Profiling telemetry: the dual-queue split sizes, attributed to the build
  // kernel about to launch. Gated here (not just inside prof_counter) because
  // kname() allocates.
  if (simt::Profiler::enabled()) {
    dev.prof_counter(kname(w, LoopTemplate::kDualQueue, "small_count"),
                     static_cast<double>(q.small_count));
    dev.prof_counter(kname(w, LoopTemplate::kDualQueue, "big_count"),
                     static_cast<double>(q.big_count));
  }
  auto small_q = simt::make_segment_array<std::int64_t>(
      static_cast<std::size_t>(std::max<std::int64_t>(q.small_count, 1)));
  auto big_q = simt::make_segment_array<std::int64_t>(
      static_cast<std::size_t>(std::max<std::int64_t>(q.big_count, 1)));
  auto counts = std::make_shared<std::pair<std::int64_t, std::int64_t>>(0, 0);

  // Phase 1: classify every outer iteration into one of the two queues.
  // This full extra pass is the dual-queue overhead the paper calls out.
  dev.launch_threads(
      thread_cfg(w, LoopTemplate::kDualQueue, "build", n, p),
      [&w, n, small_q, big_q, counts, q](LaneCtx& t) {
        for (std::int64_t i = t.global_idx(); i < n; i += t.grid_threads()) {
          w.load_outer(t, i);
          w.inner_size(i);
          const std::int64_t s = q.slot[static_cast<std::size_t>(i)];
          if (s < 0) {
            t.atomic_add(&counts->second, std::int64_t{1});
            t.st(&big_q[static_cast<std::size_t>(~s)], i);
          } else {
            t.atomic_add(&counts->first, std::int64_t{1});
            t.st(&small_q[static_cast<std::size_t>(s)], i);
          }
        }
      });

  // Phase 2: the two queues are independent, so their kernels run in
  // separate streams gated on the build kernel's event (the natural CUDA
  // implementation: record after build, wait in both worker streams).
  if (simt::Profiler::enabled()) {
    dev.prof_instant(kname(w, LoopTemplate::kDualQueue, "flush"), "queue");
  }
  const simt::StreamHandle small_stream{1}, big_stream{2};
  const simt::EventHandle after_build = dev.record_event({});
  dev.stream_wait(small_stream, after_build);
  dev.stream_wait(big_stream, after_build);

  // 2a: small iterations, thread-mapped (low divergence by design).
  dev.launch_threads(
      thread_cfg(w, LoopTemplate::kDualQueue, "small", q.small_count, p),
      [&w, small_q, c = q.small_count](LaneCtx& t) {
        for (std::int64_t k = t.global_idx(); k < c; k += t.grid_threads()) {
          const std::int64_t i = t.ld(&small_q[static_cast<std::size_t>(k)]);
          process_thread_mapped(w, t, i);
        }
      },
      small_stream);

  // 2b: large iterations, block-mapped.
  if (q.big_count > 0) {
    WorkList list;
    list.items = big_q;
    list.count = q.big_count;
    dev.launch(block_cfg(w, LoopTemplate::kDualQueue, "big", q.big_count, p),
               make_block_mapped_kernel(w, std::move(list)), big_stream);
  }

  // Later default-stream work (e.g. the next SSSP sweep) must wait for both
  // queue kernels.
  dev.stream_wait({}, dev.record_event(small_stream));
  dev.stream_wait({}, dev.record_event(big_stream));
}

void run_dbuf_global(Device& dev, const NestedLoopWorkload& w,
                     const LoopParams& p) {
  const std::int64_t n = w.size();
  const QueuePlacement q = build_placement(w, p.lb_threshold);
  if (simt::Profiler::enabled()) {
    dev.prof_counter(kname(w, LoopTemplate::kDbufGlobal, "deferred"),
                     static_cast<double>(q.big_count));
  }
  auto buffer = simt::make_segment_array<std::int64_t>(
      static_cast<std::size_t>(std::max<std::int64_t>(q.big_count, 1)));
  auto count = std::make_shared<std::int64_t>(0);

  // Phase 1: thread-mapped; large iterations are delayed to a global buffer.
  dev.launch_threads(
      thread_cfg(w, LoopTemplate::kDbufGlobal, "main", n, p),
      [&w, n, buffer, count, q](LaneCtx& t) {
        for (std::int64_t i = t.global_idx(); i < n; i += t.grid_threads()) {
          w.load_outer(t, i);
          const std::uint32_t f = w.inner_size(i);
          const std::int64_t s = q.slot[static_cast<std::size_t>(i)];
          if (s < 0) {
            t.atomic_add(count.get(), std::int64_t{1});
            t.st(&buffer[static_cast<std::size_t>(~s)], i);
          } else {
            double acc = 0.0;
            for (std::uint32_t j = 0; j < f; ++j) acc += w.body(t, i, j);
            w.commit(t, i, acc);
          }
        }
      });

  // Phase 2: the buffer is partitioned fairly across a fresh grid of blocks
  // (the inter-block redistribution dbuf-shared cannot do).
  if (simt::Profiler::enabled()) {
    dev.prof_instant(kname(w, LoopTemplate::kDbufGlobal, "flush"), "queue");
  }
  if (q.big_count > 0) {
    WorkList list;
    list.items = buffer;
    list.count = q.big_count;
    dev.launch(block_cfg(w, LoopTemplate::kDbufGlobal, "buffer", q.big_count,
                         p),
               make_block_mapped_kernel(w, std::move(list)));
  }
}

/// Shared-memory bytes the dbuf-shared/dpar-opt kernels reserve: the delayed
/// buffer (int32 indices), per-entry accumulators, and the counter.
std::size_t shared_buffer_bytes(const LoopParams& p, bool with_accumulators) {
  const auto entries = static_cast<std::size_t>(p.shared_buffer_entries);
  return entries * sizeof(std::int32_t) +
         (with_accumulators ? entries * sizeof(double) : 0) + sizeof(std::int32_t);
}

void run_dbuf_shared(Device& dev, const NestedLoopWorkload& w,
                     const LoopParams& p) {
  const std::int64_t n = w.size();
  LaunchConfig cfg = thread_cfg(w, LoopTemplate::kDbufShared, "main", n, p);
  cfg.smem_bytes = shared_buffer_bytes(p, /*with_accumulators=*/true);
  const int cap = p.shared_buffer_entries;
  const auto thres = static_cast<std::uint32_t>(p.lb_threshold);

  // Profiling telemetry: per-block delayed-buffer occupancy, recomputed on
  // the host from the same ownership rule the kernel uses (thread g owns
  // iterations g, g+grid_threads, ...; g's block is (g % grid_threads) /
  // block_threads). Deferrals past the buffer capacity fall back to inline
  // processing, so occupancy is clamped at `cap`.
  if (simt::Profiler::enabled()) {
    const std::int64_t grid_threads =
        static_cast<std::int64_t>(cfg.grid_blocks) * cfg.block_threads;
    std::vector<std::int64_t> deferred(
        static_cast<std::size_t>(cfg.grid_blocks), 0);
    for (std::int64_t i = 0; i < n; ++i) {
      if (w.inner_size(i) > thres) {
        ++deferred[static_cast<std::size_t>((i % grid_threads) /
                                            cfg.block_threads)];
      }
    }
    const std::string track = kname(w, LoopTemplate::kDbufShared, "occupancy");
    for (const std::int64_t d : deferred) {
      dev.prof_value(track, static_cast<double>(
                                std::min<std::int64_t>(d, cap)));
    }
  }

  dev.launch(cfg, [&w, n, cap, thres](BlockCtx& blk) {
    auto buf = blk.shared_array<std::int32_t>(static_cast<std::size_t>(cap));
    auto accs = blk.shared_array<double>(static_cast<std::size_t>(cap));
    auto count = blk.shared_array<std::int32_t>(1);
    const std::int64_t grid_threads =
        static_cast<std::int64_t>(blk.grid_dim()) * blk.block_dim();

    // Phase 1: process small iterations inline; delay large ones into the
    // per-block shared buffer (overflow falls back to inline processing).
    blk.each_thread([&](LaneCtx& t) {
      for (std::int64_t i = t.global_idx(); i < n; i += grid_threads) {
        w.load_outer(t, i);
        const std::uint32_t f = w.inner_size(i);
        bool deferred = false;
        if (f > thres) {
          const std::int32_t idx = t.sh_atomic_add(&count[0], 1);
          if (idx < cap) {
            t.sh_st(&buf[idx], static_cast<std::int32_t>(i));
            deferred = true;
          }
        }
        if (!deferred) {
          double acc = 0.0;
          for (std::uint32_t j = 0; j < f; ++j) acc += w.body(t, i, j);
          w.commit(t, i, acc);
        }
      }
    });

    // Phase 2: the whole block cooperates on each buffered iteration.
    blk.each_thread([&](LaneCtx& t) {
      const std::int32_t c =
          std::min(t.sh_ld(&count[0]), static_cast<std::int32_t>(cap));
      for (std::int32_t k = 0; k < c; ++k) {
        const std::int64_t i = t.sh_ld(&buf[k]);
        w.load_outer(t, i);
        const std::uint32_t f = w.inner_size(i);
        double acc = 0.0;
        for (std::uint32_t j = static_cast<std::uint32_t>(t.thread_idx());
             j < f; j += static_cast<std::uint32_t>(t.block_dim())) {
          acc += w.body(t, i, j);
        }
        if (acc != 0.0) t.sh_atomic_add(&accs[k], acc);
      }
    });

    // Phase 3: one commit per buffered iteration.
    blk.each_thread([&](LaneCtx& t) {
      const std::int32_t c =
          std::min(t.sh_ld(&count[0]), static_cast<std::int32_t>(cap));
      for (std::int32_t k = t.thread_idx(); k < c; k += t.block_dim()) {
        const std::int64_t i = t.sh_ld(&buf[k]);
        w.commit(t, i, t.sh_ld(&accs[k]));
      }
    });
  });
}

void run_dpar_naive(Device& dev, const NestedLoopWorkload& w,
                    const LoopParams& p) {
  const std::int64_t n = w.size();
  dev.launch_threads(
      thread_cfg(w, LoopTemplate::kDparNaive, "main", n, p),
      [&w, n, &p](LaneCtx& t) {
        for (std::int64_t i = t.global_idx(); i < n; i += t.grid_threads()) {
          w.load_outer(t, i);
          const std::uint32_t f = w.inner_size(i);
          if (f > static_cast<std::uint32_t>(p.lb_threshold)) {
            // One nested launch per large iteration — the paper's overhead
            // cautionary tale.
            LaunchConfig child;
            child.grid_blocks = 1;
            child.block_threads = p.block_block_size;
            child.name = kname(w, LoopTemplate::kDparNaive, "child");
            if (!t.launch_with_retry(child,
                                     make_single_iteration_kernel(w, i))) {
              // Launch refused (pool/depth/heap or persistent fault):
              // degrade to processing the iteration inline in this lane —
              // slow but correct, like the small-iteration path.
              t.note_degraded();
              double acc = 0.0;
              for (std::uint32_t j = 0; j < f; ++j) acc += w.body(t, i, j);
              w.commit(t, i, acc);
            }
          } else {
            double acc = 0.0;
            for (std::uint32_t j = 0; j < f; ++j) acc += w.body(t, i, j);
            w.commit(t, i, acc);
          }
        }
      });
}

void run_dpar_opt(Device& dev, const NestedLoopWorkload& w,
                  const LoopParams& p) {
  const std::int64_t n = w.size();
  LaunchConfig cfg = thread_cfg(w, LoopTemplate::kDparOpt, "main", n, p);
  cfg.smem_bytes = shared_buffer_bytes(p, /*with_accumulators=*/false);
  const int cap = p.shared_buffer_entries;
  const auto thres = static_cast<std::uint32_t>(p.lb_threshold);

  dev.launch(cfg, [&w, n, cap, thres, &p](BlockCtx& blk) {
    auto buf = blk.shared_array<std::int32_t>(static_cast<std::size_t>(cap));
    auto count = blk.shared_array<std::int32_t>(1);
    const std::int64_t grid_threads =
        static_cast<std::int64_t>(blk.grid_dim()) * blk.block_dim();

    // Phase 1: identical deferral to dbuf-shared.
    blk.each_thread([&](LaneCtx& t) {
      for (std::int64_t i = t.global_idx(); i < n; i += grid_threads) {
        w.load_outer(t, i);
        const std::uint32_t f = w.inner_size(i);
        bool deferred = false;
        if (f > thres) {
          const std::int32_t idx = t.sh_atomic_add(&count[0], 1);
          if (idx < cap) {
            t.sh_st(&buf[idx], static_cast<std::int32_t>(i));
            deferred = true;
          }
        }
        if (!deferred) {
          double acc = 0.0;
          for (std::uint32_t j = 0; j < f; ++j) acc += w.body(t, i, j);
          w.commit(t, i, acc);
        }
      }
    });

    // Phase 2: one nested launch per block covering all deferred iterations
    // (fewer, larger grids than dpar-naive).
    blk.each_thread([&](LaneCtx& t) {
      if (t.thread_idx() != 0) return;
      const std::int32_t c =
          std::min(t.sh_ld(&count[0]), static_cast<std::int32_t>(cap));
      if (c == 0) return;
      auto items =
          simt::make_segment_array<std::int64_t>(static_cast<std::size_t>(c));
      for (std::int32_t k = 0; k < c; ++k) {
        // The child grid reads the work list from global memory; the parent
        // must stage it there first.
        t.st(&items[static_cast<std::size_t>(k)],
             static_cast<std::int64_t>(t.sh_ld(&buf[k])));
      }
      WorkList list;
      list.count = c;
      list.items = std::move(items);
      LaunchConfig child;
      child.grid_blocks = c;
      child.block_threads = p.block_block_size;
      child.name = kname(w, LoopTemplate::kDparOpt, "child");
      if (!t.launch_with_retry(child,
                               make_block_mapped_kernel(w, std::move(list)))) {
        // Child grid refused: drain the delayed buffer inline instead —
        // this lane serially replays the block-mapped child's work.
        t.note_degraded();
        for (std::int32_t k = 0; k < c; ++k) {
          const std::int64_t i = t.sh_ld(&buf[k]);
          w.load_outer(t, i);
          const std::uint32_t f = w.inner_size(i);
          double acc = 0.0;
          for (std::uint32_t j = 0; j < f; ++j) acc += w.body(t, i, j);
          w.commit(t, i, acc);
        }
      }
    });
  });
}

// --- Workload consolidation (cons-warp / cons-block / cons-grid) -------------
//
// Instead of one child grid per large iteration (dpar-naive) or per block
// (dpar-opt), the deferred iterations of an aggregation scope are described
// by an {outer index, inner-range} descriptor bundle in global memory, and
// ONE consolidated child grid per scope processes the *concatenation* of all
// inner ranges, evenly split across its lanes (a merge-path-style split:
// each lane binary-searches the prefix-offset array for its starting
// descriptor, then walks forward). The launch carries
// `aggregated_descriptors = K` so the GMU charges one activation plus K-1
// cheap per-descriptor services instead of K activations.

/// Descriptor bundle staged to global memory for one consolidated child
/// launch: the deferred outer indices, the exclusive prefix offsets of their
/// inner sizes (count+1 entries), and one accumulator per descriptor.
struct ConsBundle {
  std::shared_ptr<std::int64_t[]> items;
  std::shared_ptr<std::int64_t[]> offsets;
  std::shared_ptr<double[]> acc;
  std::int64_t count = 0;
  std::int64_t total = 0;  ///< Concatenated inner elements (offsets[count]).
};

/// The consolidated child: lane g owns the contiguous element chunk
/// [g*total/T, (g+1)*total/T) of the concatenation, so the child is balanced
/// regardless of how skewed the individual descriptors are. Partials flush
/// to the per-descriptor accumulator at each descriptor boundary; commits
/// stay with the parent (which knows when the child has finished).
ThreadKernel make_consolidated_kernel(const NestedLoopWorkload& w,
                                      ConsBundle b) {
  return [&w, b = std::move(b)](LaneCtx& t) {
    const std::int64_t threads = t.grid_threads();
    const std::int64_t begin = t.global_idx() * b.total / threads;
    const std::int64_t end = (t.global_idx() + 1) * b.total / threads;
    if (begin >= end) return;
    // Binary-search the last descriptor whose range starts at or before
    // `begin`; each probe is a real global load of the offsets array.
    std::int64_t lo = 0, hi = b.count - 1;
    while (lo < hi) {
      const std::int64_t mid = lo + (hi - lo + 1) / 2;
      if (t.ld(&b.offsets[static_cast<std::size_t>(mid)]) <= begin) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    std::int64_t e = begin;
    for (std::int64_t k = lo; k < b.count && e < end; ++k) {
      const std::int64_t i = t.ld(&b.items[static_cast<std::size_t>(k)]);
      const std::int64_t kbegin =
          t.ld(&b.offsets[static_cast<std::size_t>(k)]);
      const std::int64_t kend =
          t.ld(&b.offsets[static_cast<std::size_t>(k + 1)]);
      if (kend <= e) continue;  // Empty descriptor range.
      w.load_outer(t, i);
      double partial = 0.0;
      const std::int64_t stop = std::min(end, kend);
      for (; e < stop; ++e) {
        partial += w.body(t, i, static_cast<std::uint32_t>(e - kbegin));
      }
      if (partial != 0.0) {
        t.atomic_add(&b.acc[static_cast<std::size_t>(k)], partial);
      }
    }
  };
}

/// Serial drain of one deferred iteration by the scope leader (used below
/// the launch threshold and on refused launches). load_outer must already
/// have been charged for `i` in this lane.
void process_serial_deferred(const NestedLoopWorkload& w, LaneCtx& t,
                             std::int64_t i) {
  const std::uint32_t f = w.inner_size(i);
  double acc = 0.0;
  for (std::uint32_t j = 0; j < f; ++j) acc += w.body(t, i, j);
  w.commit(t, i, acc);
}

/// Phase-2 leader path shared by cons-warp and cons-block: stage the `c`
/// deferred iterations (read via `item`) into a descriptor bundle, then
/// either drain them serially in this lane (below cons_min_descriptors — the
/// consolidation papers' thresholding heuristic, not a degradation) or
/// launch one consolidated child grid and commit its per-descriptor results.
template <class ItemFn>
void consolidate_scope(LaneCtx& t, const NestedLoopWorkload& w,
                       const LoopParams& p, LoopTemplate tmpl,
                       std::int32_t c, const ItemFn& item) {
  ConsBundle b;
  b.count = c;
  b.items = simt::make_segment_array<std::int64_t>(
      static_cast<std::size_t>(c));
  b.offsets = simt::make_segment_array<std::int64_t>(
      static_cast<std::size_t>(c) + 1);
  b.acc = simt::make_segment_array<double>(static_cast<std::size_t>(c));
  std::int64_t total = 0;
  for (std::int32_t k = 0; k < c; ++k) {
    const std::int64_t i = item(t, k);
    w.load_outer(t, i);
    t.st(&b.items[static_cast<std::size_t>(k)], i);
    t.st(&b.offsets[static_cast<std::size_t>(k)], total);
    total += w.inner_size(i);
  }
  t.st(&b.offsets[static_cast<std::size_t>(c)], total);
  b.total = total;

  if (c < p.cons_min_descriptors || total == 0) {
    for (std::int32_t k = 0; k < c; ++k) {
      process_serial_deferred(w, t,
                              t.ld(&b.items[static_cast<std::size_t>(k)]));
    }
    return;
  }
  LaunchConfig child;
  child.block_threads = p.block_block_size;
  child.grid_blocks =
      Device::blocks_for(total, p.block_block_size, p.max_grid_blocks);
  child.aggregated_descriptors = c;
  child.name = kname(w, tmpl, "child");
  if (t.launch_threads_with_retry(child, make_consolidated_kernel(w, b))) {
    // Child done (synchronizing launch): one commit per descriptor from the
    // leader, which already holds each iteration's outer data.
    for (std::int32_t k = 0; k < c; ++k) {
      w.commit(t, t.ld(&b.items[static_cast<std::size_t>(k)]),
               t.ld(&b.acc[static_cast<std::size_t>(k)]));
    }
  } else {
    // Aggregated launch refused: drain the whole scope inline — slow but
    // correct, mirroring dpar-opt's degradation path.
    t.note_degraded();
    for (std::int32_t k = 0; k < c; ++k) {
      process_serial_deferred(w, t,
                              t.ld(&b.items[static_cast<std::size_t>(k)]));
    }
  }
}

/// cons-warp: per-warp delayed buffers in shared memory; lane 0 of each warp
/// aggregates its warp's deferred iterations into one consolidated child.
void run_cons_warp(Device& dev, const NestedLoopWorkload& w,
                   const LoopParams& p) {
  const std::int64_t n = w.size();
  LaunchConfig cfg = thread_cfg(w, LoopTemplate::kConsWarp, "main", n, p);
  const int warps = (p.thread_block_size + 31) / 32;
  cfg.smem_bytes = static_cast<std::size_t>(warps) *
                       (static_cast<std::size_t>(p.cons_buffer_entries) *
                            sizeof(std::int32_t) +
                        sizeof(std::int32_t));
  const int cap = p.cons_buffer_entries;
  const auto thres = static_cast<std::uint32_t>(p.lb_threshold);

  dev.launch(cfg, [&w, n, cap, thres, &p](BlockCtx& blk) {
    const int warps_per_block = (blk.block_dim() + 31) / 32;
    auto buf = blk.shared_array<std::int32_t>(
        static_cast<std::size_t>(warps_per_block) * cap);
    auto count = blk.shared_array<std::int32_t>(
        static_cast<std::size_t>(warps_per_block));
    const std::int64_t grid_threads =
        static_cast<std::int64_t>(blk.grid_dim()) * blk.block_dim();

    // Phase 1: thread-mapped; large iterations are delayed into this warp's
    // slice of the shared buffer (overflow falls back to inline processing,
    // like dbuf-shared).
    blk.each_thread([&](LaneCtx& t) {
      for (std::int64_t i = t.global_idx(); i < n; i += grid_threads) {
        w.load_outer(t, i);
        const std::uint32_t f = w.inner_size(i);
        bool deferred = false;
        if (f > thres) {
          const std::int32_t idx = t.sh_atomic_add(&count[t.warp()], 1);
          if (idx < cap) {
            t.sh_st(&buf[static_cast<std::size_t>(t.warp()) * cap + idx],
                    static_cast<std::int32_t>(i));
            deferred = true;
          }
        }
        if (!deferred) {
          double acc = 0.0;
          for (std::uint32_t j = 0; j < f; ++j) acc += w.body(t, i, j);
          w.commit(t, i, acc);
        }
      }
    });

    // Phase 2: each warp leader launches one consolidated child covering its
    // warp's deferred iterations.
    blk.each_thread([&](LaneCtx& t) {
      if (t.lane() != 0) return;
      const std::int32_t c = std::min(t.sh_ld(&count[t.warp()]),
                                      static_cast<std::int32_t>(cap));
      if (c == 0) return;
      consolidate_scope(
          t, w, p, LoopTemplate::kConsWarp, c,
          [&buf, cap](LaneCtx& lt, std::int32_t k) -> std::int64_t {
            return lt.sh_ld(
                &buf[static_cast<std::size_t>(lt.warp()) * cap + k]);
          });
    });
  });
}

/// cons-block: dpar-opt's per-block deferral, but the child is a single
/// consolidated grid with a balanced lane split instead of one block per
/// deferred iteration.
void run_cons_block(Device& dev, const NestedLoopWorkload& w,
                    const LoopParams& p) {
  const std::int64_t n = w.size();
  LaunchConfig cfg = thread_cfg(w, LoopTemplate::kConsBlock, "main", n, p);
  cfg.smem_bytes = static_cast<std::size_t>(p.cons_buffer_entries) *
                       sizeof(std::int32_t) +
                   sizeof(std::int32_t);
  const int cap = p.cons_buffer_entries;
  const auto thres = static_cast<std::uint32_t>(p.lb_threshold);

  dev.launch(cfg, [&w, n, cap, thres, &p](BlockCtx& blk) {
    auto buf = blk.shared_array<std::int32_t>(static_cast<std::size_t>(cap));
    auto count = blk.shared_array<std::int32_t>(1);
    const std::int64_t grid_threads =
        static_cast<std::int64_t>(blk.grid_dim()) * blk.block_dim();

    // Phase 1: identical deferral to dbuf-shared / dpar-opt.
    blk.each_thread([&](LaneCtx& t) {
      for (std::int64_t i = t.global_idx(); i < n; i += grid_threads) {
        w.load_outer(t, i);
        const std::uint32_t f = w.inner_size(i);
        bool deferred = false;
        if (f > thres) {
          const std::int32_t idx = t.sh_atomic_add(&count[0], 1);
          if (idx < cap) {
            t.sh_st(&buf[idx], static_cast<std::int32_t>(i));
            deferred = true;
          }
        }
        if (!deferred) {
          double acc = 0.0;
          for (std::uint32_t j = 0; j < f; ++j) acc += w.body(t, i, j);
          w.commit(t, i, acc);
        }
      }
    });

    // Phase 2: thread 0 launches one consolidated child for the block.
    blk.each_thread([&](LaneCtx& t) {
      if (t.thread_idx() != 0) return;
      const std::int32_t c =
          std::min(t.sh_ld(&count[0]), static_cast<std::int32_t>(cap));
      if (c == 0) return;
      consolidate_scope(t, w, p, LoopTemplate::kConsBlock, c,
                        [&buf](LaneCtx& lt, std::int32_t k) -> std::int64_t {
                          return lt.sh_ld(&buf[k]);
                        });
    });
  });
}

/// cons-grid: the whole kernel's deferred iterations aggregate into a single
/// consolidated child, launched by a one-block "launch" kernel (modeling the
/// one parent thread that fires the aggregated grid).
void run_cons_grid(Device& dev, const NestedLoopWorkload& w,
                   const LoopParams& p) {
  const std::int64_t n = w.size();
  const QueuePlacement q = build_placement(w, p.lb_threshold);
  if (simt::Profiler::enabled()) {
    dev.prof_counter(kname(w, LoopTemplate::kConsGrid, "deferred"),
                     static_cast<double>(q.big_count));
  }

  if (q.big_count < p.cons_min_descriptors) {
    // Too few large iterations to be worth an aggregated launch: process
    // everything inline, thread-mapped (the thresholding heuristic).
    dev.launch_threads(
        thread_cfg(w, LoopTemplate::kConsGrid, "main", n, p),
        [&w, n](LaneCtx& t) {
          for (std::int64_t i = t.global_idx(); i < n;
               i += t.grid_threads()) {
            process_thread_mapped(w, t, i);
          }
        });
    return;
  }

  ConsBundle b;
  b.count = q.big_count;
  b.items = simt::make_segment_array<std::int64_t>(
      static_cast<std::size_t>(q.big_count));
  b.offsets = simt::make_segment_array<std::int64_t>(
      static_cast<std::size_t>(q.big_count) + 1);
  b.acc = simt::make_segment_array<double>(
      static_cast<std::size_t>(q.big_count));
  // Host-precomputed prefix offsets (deterministic, like the placement
  // itself); the launch kernel charges the scan's loads below.
  {
    std::int64_t total = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t s = q.slot[static_cast<std::size_t>(i)];
      if (s < 0) {
        b.offsets[static_cast<std::size_t>(~s)] = total;
        total += w.inner_size(i);
      }
    }
    b.offsets[static_cast<std::size_t>(q.big_count)] = total;
    b.total = total;
  }

  // Phase 1: thread-mapped; large iterations are delayed to the global
  // descriptor buffer (same mechanics as dbuf-global's main kernel).
  auto count = std::make_shared<std::int64_t>(0);
  dev.launch_threads(
      thread_cfg(w, LoopTemplate::kConsGrid, "main", n, p),
      [&w, n, b, count, q](LaneCtx& t) {
        for (std::int64_t i = t.global_idx(); i < n; i += t.grid_threads()) {
          w.load_outer(t, i);
          const std::uint32_t f = w.inner_size(i);
          const std::int64_t s = q.slot[static_cast<std::size_t>(i)];
          if (s < 0) {
            t.atomic_add(count.get(), std::int64_t{1});
            t.st(&b.items[static_cast<std::size_t>(~s)], i);
          } else {
            double acc = 0.0;
            for (std::uint32_t j = 0; j < f; ++j) acc += w.body(t, i, j);
            w.commit(t, i, acc);
          }
        }
      });

  // Phase 2: a one-block launch kernel. Thread 0 reads the descriptor
  // bundle (charging the scan) and fires the single consolidated child;
  // after it completes, all threads of the block stride the commits.
  LaunchConfig lcfg;
  lcfg.grid_blocks = 1;
  lcfg.block_threads = p.block_block_size;
  lcfg.smem_bytes = sizeof(std::int32_t);
  lcfg.name = kname(w, LoopTemplate::kConsGrid, "launch");
  dev.launch(lcfg, [&w, b, &p](BlockCtx& blk) {
    auto ok = blk.shared_array<std::int32_t>(1);
    blk.each_thread([&](LaneCtx& t) {
      if (t.thread_idx() != 0) return;
      // The aggregating thread walks the staged descriptors (items and the
      // prefix-offset scan) before issuing the launch.
      t.charge_load(b.items.get(),
                    static_cast<std::uint32_t>(b.count * sizeof(std::int64_t)));
      t.charge_load(b.offsets.get(), static_cast<std::uint32_t>(
                                         (b.count + 1) * sizeof(std::int64_t)));
      t.compute(static_cast<std::uint32_t>(b.count));
      LaunchConfig child;
      child.block_threads = p.block_block_size;
      child.grid_blocks =
          Device::blocks_for(b.total, p.block_block_size, p.max_grid_blocks);
      child.aggregated_descriptors = static_cast<int>(
          std::min<std::int64_t>(b.count, std::numeric_limits<int>::max()));
      child.name = kname(w, LoopTemplate::kConsGrid, "child");
      if (t.launch_threads_with_retry(child,
                                      make_consolidated_kernel(w, b))) {
        t.sh_st(&ok[0], 1);
      } else {
        // Aggregated launch refused: this lane drains every descriptor
        // serially — the degradation path.
        t.note_degraded();
        t.sh_st(&ok[0], 0);
        for (std::int64_t k = 0; k < b.count; ++k) {
          const std::int64_t i =
              t.ld(&b.items[static_cast<std::size_t>(k)]);
          w.load_outer(t, i);
          process_serial_deferred(w, t, i);
        }
      }
    });
    blk.each_thread([&](LaneCtx& t) {
      if (t.sh_ld(&ok[0]) == 0) return;  // Serial drain already committed.
      for (std::int64_t k = t.thread_idx(); k < b.count;
           k += t.block_dim()) {
        const std::int64_t i = t.ld(&b.items[static_cast<std::size_t>(k)]);
        w.load_outer(t, i);
        w.commit(t, i, t.ld(&b.acc[static_cast<std::size_t>(k)]));
      }
    });
  });
}

}  // namespace

// --- The template registry ---------------------------------------------------
//
// One row per template; names, parsers, family listings, autotune defaults
// and the dispatch below all derive from this table. Adding a template is a
// one-row change (plus its run function).
namespace {
constexpr LoopTemplateDesc kLoopTemplateRegistry[] = {
    {LoopTemplate::kBaseline, "baseline", TemplateFamily::kBasic, false,
     &run_baseline},
    {LoopTemplate::kBlockMapped, "block-mapped", TemplateFamily::kBasic, false,
     &run_block_mapped},
    {LoopTemplate::kWarpMapped, "warp-mapped", TemplateFamily::kBasic, false,
     &run_warp_mapped},
    {LoopTemplate::kDualQueue, "dual-queue", TemplateFamily::kLoadBalancing,
     true, &run_dual_queue},
    {LoopTemplate::kDbufShared, "dbuf-shared", TemplateFamily::kLoadBalancing,
     true, &run_dbuf_shared},
    {LoopTemplate::kDbufGlobal, "dbuf-global", TemplateFamily::kLoadBalancing,
     true, &run_dbuf_global},
    {LoopTemplate::kDparNaive, "dpar-naive", TemplateFamily::kLoadBalancing,
     false, &run_dpar_naive},
    {LoopTemplate::kDparOpt, "dpar-opt", TemplateFamily::kLoadBalancing, true,
     &run_dpar_opt},
    {LoopTemplate::kConsWarp, "cons-warp", TemplateFamily::kConsolidation,
     true, &run_cons_warp},
    {LoopTemplate::kConsBlock, "cons-block", TemplateFamily::kConsolidation,
     true, &run_cons_block},
    {LoopTemplate::kConsGrid, "cons-grid", TemplateFamily::kConsolidation,
     true, &run_cons_grid},
};
}  // namespace

std::span<const LoopTemplateDesc> loop_templates() {
  return kLoopTemplateRegistry;
}

const LoopTemplateDesc& describe(LoopTemplate t) {
  for (const LoopTemplateDesc& d : kLoopTemplateRegistry) {
    if (d.tmpl == t) return d;
  }
  throw std::invalid_argument("unknown loop template");
}

std::vector<LoopTemplate> templates_in_family(TemplateFamily f) {
  std::vector<LoopTemplate> out;
  for (const LoopTemplateDesc& d : kLoopTemplateRegistry) {
    if (d.family == f) out.push_back(d.tmpl);
  }
  return out;
}

std::vector<LoopTemplate> default_autotune_templates() {
  std::vector<LoopTemplate> out;
  for (const LoopTemplateDesc& d : kLoopTemplateRegistry) {
    if (d.autotune_default) out.push_back(d.tmpl);
  }
  return out;
}

std::string_view name(LoopTemplate t) { return describe(t).name; }

LoopTemplate parse_loop_template(std::string_view s) {
  for (const LoopTemplateDesc& d : kLoopTemplateRegistry) {
    if (s == d.name) return d.tmpl;
  }
  std::string valid;
  for (const LoopTemplateDesc& d : kLoopTemplateRegistry) {
    if (!valid.empty()) valid += ", ";
    valid += d.name;
  }
  throw std::invalid_argument("unknown loop template '" + std::string(s) +
                              "' (valid: " + valid + ")");
}

RunResult run_nested_loop(simt::Device& dev, const NestedLoopWorkload& w,
                          const LoopRun& run) {
  run.params.validate();
  const LoopTemplateDesc& d = describe(run.tmpl);
  if (run.policy.has_value()) {
    simt::Session session = dev.session(*run.policy);
    d.run(dev, w, run.params);
    return RunResult{session.report()};
  }
  d.run(dev, w, run.params);
  return RunResult{};
}

}  // namespace nestpar::nested
