#include "src/nested/autotune.h"

#include <algorithm>

#include "src/nested/flatten.h"

namespace nestpar::nested {

std::string TuneCandidate::label() const {
  if (flattened) return "flattened";
  std::string s(name(tmpl));
  if (tmpl != LoopTemplate::kBaseline && tmpl != LoopTemplate::kBlockMapped) {
    s += "/lb" + std::to_string(lb_threshold);
  }
  return s;
}

AutotuneResult autotune_nested_loop(const NestedLoopWorkload& w,
                                    const AutotuneOptions& opt,
                                    simt::DeviceSpec spec) {
  AutotuneResult res;

  const auto evaluate = [&](TuneCandidate c) {
    simt::Device dev(spec);
    simt::Session session = dev.session();
    if (c.flattened) {
      FlattenParams fp;
      fp.block_size = opt.base_params.thread_block_size;
      fp.max_grid_blocks = opt.base_params.max_grid_blocks;
      run_flattened(dev, w, fp);
    } else {
      LoopParams p = opt.base_params;
      p.lb_threshold = c.lb_threshold;
      run_nested_loop(dev, w, LoopRun{.tmpl = c.tmpl, .params = p});
    }
    c.model_us = session.report().total_us;
    res.all.push_back(c);
    return c.model_us;
  };

  res.baseline_us = evaluate(TuneCandidate{LoopTemplate::kBaseline});
  for (const LoopTemplate t : opt.templates) {
    if (t == LoopTemplate::kBaseline) continue;
    if (t == LoopTemplate::kBlockMapped) {
      evaluate(TuneCandidate{t});
      continue;
    }
    for (const int lb : opt.thresholds) {
      evaluate(TuneCandidate{t, false, lb});
    }
  }
  if (opt.include_flattened) {
    TuneCandidate c;
    c.flattened = true;
    evaluate(c);
  }

  std::stable_sort(res.all.begin(), res.all.end(),
                   [](const TuneCandidate& a, const TuneCandidate& b) {
                     return a.model_us < b.model_us;
                   });
  res.best = res.all.front();
  return res;
}

}  // namespace nestpar::nested
