#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/nested/workload.h"
#include "src/simt/device.h"
#include "src/simt/exec_policy.h"

namespace nestpar::nested {

/// The parallelization templates of Figure 1. `kBaseline` is the paper's
/// comparison point (thread-mapped outer loop, no load balancing);
/// `kBlockMapped` is the other naive mapping (included for ablations).
enum class LoopTemplate {
  kBaseline,    ///< Fig. 1(a) thread-mapped, no load balancing.
  kBlockMapped, ///< Outer iterations to blocks, inner iterations to threads.
  kWarpMapped,  ///< Virtual warp-centric mapping (Hong et al. [20]): one
                ///< warp per outer iteration, lanes split the inner loop.
  kDualQueue,   ///< Fig. 1(b): small-work queue + big-work queue.
  kDbufShared,  ///< Fig. 1(c): delayed buffer in shared memory, one kernel.
  kDbufGlobal,  ///< Fig. 1(c): delayed buffer in global memory, two kernels.
  kDparNaive,   ///< Fig. 1(d): one nested launch per large iteration.
  kDparOpt,     ///< Fig. 1(e): one nested launch per block, second phase.
};

/// All seven, in presentation order.
inline constexpr LoopTemplate kAllLoopTemplates[] = {
    LoopTemplate::kBaseline,   LoopTemplate::kBlockMapped,
    LoopTemplate::kWarpMapped, LoopTemplate::kDualQueue,
    LoopTemplate::kDbufShared, LoopTemplate::kDbufGlobal,
    LoopTemplate::kDparNaive,  LoopTemplate::kDparOpt,
};

/// The five load-balancing templates compared against the baseline in
/// Figs. 5/6 (dual-queue, dbuf-shared, dbuf-global, dpar-naive, dpar-opt).
inline constexpr LoopTemplate kLoadBalancingTemplates[] = {
    LoopTemplate::kDualQueue,  LoopTemplate::kDbufShared,
    LoopTemplate::kDbufGlobal, LoopTemplate::kDparNaive,
    LoopTemplate::kDparOpt,
};

/// Canonical template name ("baseline", "dual-queue", ...). The returned
/// view points at a string literal and never dangles.
std::string_view name(LoopTemplate t);

/// Inverse of `name`: parse a template from its canonical spelling. Throws
/// std::invalid_argument listing the valid names — CLI code can surface the
/// message verbatim.
LoopTemplate parse_loop_template(std::string_view s);

/// Tuning knobs shared by all templates (paper §III.B):
///  - lb_threshold: iterations with inner_size > lb_threshold are "large" and
///    are processed block-mapped (or via nested kernels).
///  - thread_block_size: block size of thread-mapped phases; 192 matches the
///    cores-per-SM figure the paper derives from the occupancy calculator.
///  - block_block_size: block size of block-mapped phases; the paper settles
///    on 64 after the Figure 4 sweep.
struct LoopParams {
  int lb_threshold = 32;
  int thread_block_size = 192;
  int block_block_size = 64;
  int max_grid_blocks = 65535;
  /// Capacity of the per-block shared-memory delayed buffer (entries) used
  /// by dbuf-shared and dpar-opt.
  int shared_buffer_entries = 256;

  /// Throws std::invalid_argument naming the offending field if any knob is
  /// out of range. Called by run_nested_loop before launching anything.
  void validate() const;
};

/// Execute the workload once on `dev` with the chosen template. Functional
/// results land in the workload's arrays immediately; model time and metrics
/// come from `dev.report()` (which times everything launched since the last
/// `dev.reset()`, so callers typically reset, run, then report — or use the
/// session-based overload below, which does exactly that).
void run_nested_loop(simt::Device& dev, const NestedLoopWorkload& w,
                     LoopTemplate tmpl, const LoopParams& p = {});

/// Result of a bundled run: the timing report for exactly this execution.
/// Functional results are in the workload's arrays, as always.
struct RunResult {
  simt::RunReport report;
};

/// One-call form: opens a fresh session on `dev` under `policy`, executes
/// the template, and returns the report — replacing the manual
/// reset -> run -> report dance. The device's policy is restored afterwards.
RunResult run_nested_loop(simt::Device& dev, const NestedLoopWorkload& w,
                          LoopTemplate tmpl, const LoopParams& p,
                          const simt::ExecPolicy& policy);

}  // namespace nestpar::nested
