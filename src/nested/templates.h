#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/nested/workload.h"
#include "src/simt/device.h"
#include "src/simt/exec_policy.h"

namespace nestpar::nested {

/// The parallelization templates of Figure 1 plus the workload-consolidation
/// family from the follow-up line of work. `kBaseline` is the paper's
/// comparison point (thread-mapped outer loop, no load balancing);
/// `kBlockMapped` is the other naive mapping (included for ablations).
enum class LoopTemplate {
  kBaseline,    ///< Fig. 1(a) thread-mapped, no load balancing.
  kBlockMapped, ///< Outer iterations to blocks, inner iterations to threads.
  kWarpMapped,  ///< Virtual warp-centric mapping (Hong et al. [20]): one
                ///< warp per outer iteration, lanes split the inner loop.
  kDualQueue,   ///< Fig. 1(b): small-work queue + big-work queue.
  kDbufShared,  ///< Fig. 1(c): delayed buffer in shared memory, one kernel.
  kDbufGlobal,  ///< Fig. 1(c): delayed buffer in global memory, two kernels.
  kDparNaive,   ///< Fig. 1(d): one nested launch per large iteration.
  kDparOpt,     ///< Fig. 1(e): one nested launch per block, second phase.
  kConsWarp,    ///< Workload consolidation: one aggregated child grid per
                ///< warp, lanes evenly split over the concatenated ranges.
  kConsBlock,   ///< Workload consolidation: one aggregated child grid per
                ///< block (dpar-opt's scope, but a balanced child).
  kConsGrid,    ///< Workload consolidation: a single aggregated child grid
                ///< for the whole kernel.
};

/// Template families, used to group registry rows: the naive mappings, the
/// paper's load-balancing templates (Figs. 5/6), and the launch-aggregating
/// consolidation templates.
enum class TemplateFamily {
  kBasic,
  kLoadBalancing,
  kConsolidation,
};

/// Canonical family name ("basic", "load-balancing", "consolidation").
std::string_view name(TemplateFamily f);

/// Tuning knobs shared by all templates (paper §III.B):
///  - lb_threshold: iterations with inner_size > lb_threshold are "large" and
///    are processed block-mapped (or via nested kernels).
///  - thread_block_size: block size of thread-mapped phases; 192 matches the
///    cores-per-SM figure the paper derives from the occupancy calculator.
///  - block_block_size: block size of block-mapped phases; the paper settles
///    on 64 after the Figure 4 sweep.
struct LoopParams {
  int lb_threshold = 32;
  int thread_block_size = 192;
  int block_block_size = 64;
  int max_grid_blocks = 65535;
  /// Capacity of the per-block shared-memory delayed buffer (entries) used
  /// by dbuf-shared and dpar-opt.
  int shared_buffer_entries = 256;
  /// Workload-consolidation knobs (cons-warp / cons-block / cons-grid):
  /// capacity of each aggregation scope's descriptor buffer (entries per
  /// warp for cons-warp, per block for cons-block)...
  int cons_buffer_entries = 256;
  /// ...and the minimum number of buffered descriptors worth one aggregated
  /// child launch. Scopes holding fewer drain them inline instead of
  /// launching (the thresholding heuristic of the consolidation papers).
  int cons_min_descriptors = 2;

  /// Throws std::invalid_argument naming the offending field if any knob is
  /// out of range. Called by run_nested_loop before launching anything.
  void validate() const;
};

/// One registry row fully describing a template: its canonical name, family,
/// whether the autotuner should consider it by default, and the function
/// that executes it. Adding a template is a one-row change in templates.cpp;
/// names, parsers, autotune defaults, and bench listings all derive from
/// this table.
struct LoopTemplateDesc {
  LoopTemplate tmpl;
  std::string_view name;
  TemplateFamily family;
  /// Candidate in AutotuneOptions' default sweep.
  bool autotune_default;
  void (*run)(simt::Device&, const NestedLoopWorkload&, const LoopParams&);
};

/// The full template registry, in presentation order.
std::span<const LoopTemplateDesc> loop_templates();

/// Registry row for one template (never fails: every enum value has a row).
const LoopTemplateDesc& describe(LoopTemplate t);

/// All templates of one family, in presentation order.
std::vector<LoopTemplate> templates_in_family(TemplateFamily f);

/// The templates flagged as default autotune candidates.
std::vector<LoopTemplate> default_autotune_templates();

/// Canonical template name ("baseline", "dual-queue", ...). The returned
/// view points at a string literal and never dangles.
std::string_view name(LoopTemplate t);

/// Inverse of `name`: parse a template from its canonical spelling. Throws
/// std::invalid_argument listing the valid names — CLI code can surface the
/// message verbatim.
LoopTemplate parse_loop_template(std::string_view s);

/// Everything one execution needs: the template, its tuning knobs, and —
/// optionally — an ExecPolicy. With a policy set, run_nested_loop opens a
/// fresh session under it and the returned RunResult carries the report for
/// exactly that execution; without one, the run records into the device's
/// ambient session (callers time it via dev.report()) and the returned
/// report is empty.
struct LoopRun {
  LoopTemplate tmpl = LoopTemplate::kBaseline;
  LoopParams params;
  std::optional<simt::ExecPolicy> policy;
};

/// Result of a run: the timing report when `LoopRun::policy` was set (empty
/// otherwise). Functional results are in the workload's arrays, as always.
struct RunResult {
  simt::RunReport report;
};

/// The single entry point: execute the workload once on `dev` as described
/// by `run`. Functional results land in the workload's arrays immediately.
RunResult run_nested_loop(simt::Device& dev, const NestedLoopWorkload& w,
                          const LoopRun& run);

}  // namespace nestpar::nested
