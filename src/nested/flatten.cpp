#include "src/nested/flatten.h"

#include <algorithm>
#include <bit>
#include <memory>
#include <stdexcept>
#include <vector>

namespace nestpar::nested {

using simt::BlockCtx;
using simt::Device;
using simt::LaneCtx;
using simt::LaunchConfig;

namespace {

/// Device state shared by the flattening pipeline's kernels.
struct FlatState {
  std::vector<std::uint32_t> sizes;      ///< f(i), materialized.
  std::vector<std::uint64_t> offsets;    ///< Exclusive scan of sizes, n+1.
  std::vector<std::uint64_t> chunk_sum;  ///< Per-scan-chunk totals.
  std::vector<double> partial;           ///< Per-segment reduction value.
};

LaunchConfig cfg_for(std::int64_t items, int block_size, int max_blocks,
                     const char* name) {
  LaunchConfig c;
  c.block_threads = block_size;
  c.grid_blocks = Device::blocks_for(items, block_size, max_blocks);
  c.name = name;
  return c;
}

/// Greatest i with offsets[i] <= e, charging one load per probe — the
/// per-edge segment search every flattened code pays.
std::int64_t charged_segment_search(LaneCtx& t,
                                    const std::vector<std::uint64_t>& offsets,
                                    std::uint64_t e) {
  std::size_t lo = 0, hi = offsets.size() - 1;
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    t.compute(1);
    if (t.ld(&offsets[mid]) <= e) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return static_cast<std::int64_t>(lo);
}

}  // namespace

void run_flattened(Device& dev, const NestedLoopWorkload& w,
                   const FlattenParams& p) {
  if (p.block_size < 1) {
    throw std::invalid_argument("run_flattened: bad block size");
  }
  const std::int64_t n = w.size();
  auto st = std::make_shared<FlatState>();
  st->sizes.assign(static_cast<std::size_t>(std::max<std::int64_t>(n, 1)), 0);
  st->offsets.assign(st->sizes.size() + 1, 0);
  st->partial.assign(st->sizes.size(), 0.0);

  // 1. Materialize f(i) (and clear the partial array).
  dev.launch_threads(
      cfg_for(n, p.block_size, p.max_grid_blocks, "flatten/sizes"),
      [&w, st, n](LaneCtx& t) {
        for (std::int64_t i = t.global_idx(); i < n; i += t.grid_threads()) {
          w.load_outer(t, i);
          t.st(&st->sizes[static_cast<std::size_t>(i)], w.inner_size(i));
          t.st(&st->partial[static_cast<std::size_t>(i)], 0.0);
        }
      });

  // 2. Two-level exclusive scan: per-chunk block scan, then a single-block
  // scan of the chunk totals, then the add-offsets pass.
  const std::size_t un = st->sizes.size();
  const std::size_t chunk =
      std::max<std::size_t>(2048, (un + 1023) / 1024);
  const std::size_t nchunks = (un + chunk - 1) / chunk;
  st->chunk_sum.assign(nchunks, 0);
  const int scan_cost = std::bit_width(static_cast<unsigned>(chunk));

  {
    LaunchConfig c;
    c.block_threads = p.block_size;
    c.grid_blocks = static_cast<int>(std::min<std::size_t>(nchunks, 65535));
    c.name = "flatten/scan-chunks";
    dev.launch(c, [st, un, chunk, nchunks, scan_cost](BlockCtx& blk) {
      for (std::size_t cidx = static_cast<std::size_t>(blk.block_idx());
           cidx < nchunks; cidx += static_cast<std::size_t>(blk.grid_dim())) {
        const std::size_t begin = cidx * chunk;
        const std::size_t end = std::min(un, begin + chunk);
        blk.each_thread([&](LaneCtx& t) {
          // Hillis-Steele-style cost: each lane touches its strided
          // elements once per scan level.
          for (std::size_t k = begin + static_cast<std::size_t>(t.thread_idx());
               k < end; k += static_cast<std::size_t>(t.block_dim())) {
            t.ld(&st->sizes[k]);
            t.compute(static_cast<std::uint32_t>(scan_cost));
            t.st(&st->offsets[k], std::uint64_t{0});  // rewritten below
          }
        });
        // Functional scan (values must be exact; cost charged above).
        std::uint64_t acc = 0;
        for (std::size_t k = begin; k < end; ++k) {
          st->offsets[k] = acc;
          acc += st->sizes[k];
        }
        st->chunk_sum[cidx] = acc;
      }
    });
  }
  {
    LaunchConfig c;
    c.block_threads = p.block_size;
    c.grid_blocks = 1;
    c.name = "flatten/scan-totals";
    dev.launch(c, [st, nchunks, scan_cost](BlockCtx& blk) {
      blk.each_thread([&](LaneCtx& t) {
        for (std::size_t k = static_cast<std::size_t>(t.thread_idx());
             k < nchunks; k += static_cast<std::size_t>(t.block_dim())) {
          t.ld(&st->chunk_sum[k]);
          t.compute(static_cast<std::uint32_t>(scan_cost));
          t.st(&st->chunk_sum[k], std::uint64_t{st->chunk_sum[k]});
        }
      });
      std::uint64_t acc = 0;
      for (std::size_t k = 0; k < nchunks; ++k) {
        const std::uint64_t v = st->chunk_sum[k];
        st->chunk_sum[k] = acc;
        acc += v;
      }
    });
  }
  dev.launch_threads(
      cfg_for(static_cast<std::int64_t>(un), p.block_size, p.max_grid_blocks,
              "flatten/scan-apply"),
      [st, un, chunk](LaneCtx& t) {
        for (std::size_t k = static_cast<std::size_t>(t.global_idx()); k < un;
             k += static_cast<std::size_t>(t.grid_threads())) {
          const std::uint64_t base = t.ld(&st->chunk_sum[k / chunk]);
          t.compute(1);
          t.st(&st->offsets[k], st->offsets[k] + base);
        }
      });
  // offsets[n] = E (host-visible bookkeeping).
  st->offsets[un] = st->offsets[un - 1] + st->sizes[un - 1];
  const std::uint64_t total_edges = st->offsets[un];

  // 3. Edge-parallel kernel: one lane per (i, j); per-lane run accumulation
  // with an atomic flush at every segment change.
  if (total_edges > 0) {
    dev.launch_threads(
        cfg_for(static_cast<std::int64_t>(total_edges), p.block_size,
                p.max_grid_blocks, "flatten/edges"),
        [&w, st, total_edges](LaneCtx& t) {
          std::int64_t cur = -1;
          double acc = 0.0;
          for (std::uint64_t e = static_cast<std::uint64_t>(t.global_idx());
               e < total_edges;
               e += static_cast<std::uint64_t>(t.grid_threads())) {
            const std::int64_t i = charged_segment_search(t, st->offsets, e);
            const auto j =
                static_cast<std::uint32_t>(e - st->offsets[static_cast<std::size_t>(i)]);
            if (i != cur) {
              if (cur >= 0 && acc != 0.0) {
                t.atomic_add(&st->partial[static_cast<std::size_t>(cur)], acc);
              }
              cur = i;
              acc = 0.0;
            }
            acc += w.body(t, i, j);
          }
          if (cur >= 0 && acc != 0.0) {
            t.atomic_add(&st->partial[static_cast<std::size_t>(cur)], acc);
          }
        });
  }

  // 4. Fixup: exactly one commit per outer iteration.
  dev.launch_threads(
      cfg_for(n, p.block_size, p.max_grid_blocks, "flatten/fixup"),
      [&w, st, n](LaneCtx& t) {
        for (std::int64_t i = t.global_idx(); i < n; i += t.grid_threads()) {
          const double v = t.ld(&st->partial[static_cast<std::size_t>(i)]);
          w.commit(t, i, v);
        }
      });
}

}  // namespace nestpar::nested
