#pragma once

#include <cstdint>

#include "src/simt/ctx.h"

namespace nestpar::nested {

/// An irregular nested loop in the shape of the paper's Figure 1(a):
///
///   for (i = 0; i < size(); i++)        // parallelizable outer loop
///     for (j = 0; j < inner_size(i); j++)
///       value += body(i, j);            // parallelizable inner loop
///   commit(i, value);
///
/// The parallelization templates decide how outer and inner iterations map to
/// threads and blocks; the workload only describes the computation. The
/// reduction protocol: `body` returns a partial value; the template
/// accumulates partials (in registers or shared memory) and calls `commit`
/// exactly once per outer iteration from a single lane. Scatter-style
/// workloads (e.g. SSSP's atomicMin relaxations) do their writes inside
/// `body` and use an empty `commit`.
///
/// Every method takes the executing LaneCtx so the workload charges its own
/// memory traffic — the templates charge only what the template itself adds
/// (queues, buffers, nested launches).
class NestedLoopWorkload {
 public:
  virtual ~NestedLoopWorkload() = default;

  /// Number of outer-loop iterations.
  virtual std::int64_t size() const = 0;

  /// Inner trip count f(i). May depend on mutable algorithm state (e.g. the
  /// SSSP active mask), in which case it must be consistent within one
  /// template run.
  virtual std::uint32_t inner_size(std::int64_t i) const = 0;

  /// Read the outer iteration's descriptor (row offsets, per-node state...).
  /// Called once per lane that participates in iteration i.
  virtual void load_outer(simt::LaneCtx& t, std::int64_t i) const = 0;

  /// One inner iteration; returns a partial reduction value (0 for scatter).
  virtual double body(simt::LaneCtx& t, std::int64_t i,
                      std::uint32_t j) const = 0;

  /// Commit the reduced value for outer iteration i (single lane).
  virtual void commit(simt::LaneCtx& t, std::int64_t i, double value) const = 0;

  /// Label used in kernel names / reports.
  virtual const char* name() const = 0;
};

}  // namespace nestpar::nested
