#pragma once

#include "src/nested/workload.h"
#include "src/simt/device.h"

namespace nestpar::nested {

/// Flattening transformation (Blelloch & Sabot [25], NESL [26], Bergstrom &
/// Reppy [27]) — the related-work alternative to the paper's templates: the
/// nested loop is flattened into a single edge-parallel loop over all
/// (i, j) pairs, so no load balancing is needed at all.
///
/// Pipeline (all on the device, as a flattening compiler would emit):
///   1. `sizes` kernel  — materialize f(i) for every outer iteration;
///   2. scan kernels    — exclusive prefix sum of the sizes (two-level
///                        block scan), yielding flat segment offsets;
///   3. `edge` kernel   — one thread per inner iteration: binary-search the
///                        offsets for its segment, run the body, and reduce
///                        block-local runs in shared memory (segments fully
///                        inside a block commit immediately; block-boundary
///                        segments spill to a global partial array);
///   4. `fixup` kernel  — commit every segment not already committed
///                        (boundary segments and empty segments).
///
/// Contrast with the templates: perfect load balance (every lane does one
/// inner iteration) at the price of the scan passes, the per-edge segment
/// search, and atomics on boundary segments.
struct FlattenParams {
  int block_size = 192;
  int max_grid_blocks = 65535;
};

/// Run the workload once, flattened. Functional results land in the
/// workload's arrays; model time and metrics come from `dev.report()`.
void run_flattened(simt::Device& dev, const NestedLoopWorkload& w,
                   const FlattenParams& p = {});

}  // namespace nestpar::nested
