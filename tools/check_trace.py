#!/usr/bin/env python3
"""Structural validator for nestpar observability artifacts.

Checks a Chrome/Perfetto trace-event file (from `nestpar_serve --trace` or
the simulator's trace export) and/or a SERVE_*.json results file for the
invariants the tooling relies on:

trace file
  - parses as JSON with a top-level "traceEvents" array
  - async begin/end ("b"/"e") events balance per (cat, id, pid)
  - complete ("X") slices carry a non-negative duration
  - flow starts ("s") pair with flow ends ("f") per (cat, id)
  - event timestamps are non-negative

unified cross-layer trace (when the file carries serve-grid slices)
  - every "serve-grid" device slice is stamped with its dispatch batch id
    (args.batch) and originating request (args.request)
  - every flow start/end lands inside a slice or span on its (pid, tid) row —
    no arrows into thin air, including after ring-cap eviction
  - the "serve-attribution" record's per-request cycles sum *bit-exactly*
    (left-to-right, same fold order as the producer) to its total — the
    conservation invariant: attributed cycles == scheduled cycles

serve results file
  - every record satisfies ok + expired + shed == submitted
  - p99_split shares sum to p99_us within rounding tolerance
  - telemetry series timestamps are non-decreasing
  - per-tenant rollups (schema v3): tenant ok counts sum to the record's ok,
    tenant device cycles sum to device_cycles_total within float-regrouping
    tolerance, and every tenant's fault cycles stay within its total

Usage:
  check_trace.py [--trace FILE] [--serve FILE]

Exit status: 0 when every check passes, 1 with a problem listing otherwise,
2 on usage/IO errors. No third-party dependencies.
"""

import argparse
import json
import sys


def check_trace(path, problems):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        problems.append(f"{path}: not readable/parsable JSON: {e}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        problems.append(f"{path}: missing 'traceEvents' array")
        return

    async_open = {}  # (cat, id, pid) -> open count
    flows = {}  # (cat, id) -> [starts, ends]
    # Slice/span intervals per (pid, tid) row, for flow-anchor checks; async
    # spans are paired begin-to-end per (cat, id, pid) in file order.
    intervals = {}  # (pid, tid) -> [(begin, end)]
    async_stack = {}  # (cat, id, pid) -> [(begin_ts, tid)]
    flow_events = []  # (index, ph, pid, tid, ts, cat, id)
    grid_slices = 0
    attribution = None
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"{path}: event #{i} is not an object")
            continue
        ph = ev.get("ph")
        ts = ev.get("ts")
        if ts is not None and ts < 0:
            problems.append(f"{path}: event #{i} ({ph}) has negative ts {ts}")
        if ph == "b" or ph == "e":
            key = (ev.get("cat"), ev.get("id"), ev.get("pid"))
            n = async_open.get(key, 0) + (1 if ph == "b" else -1)
            if n < 0:
                problems.append(
                    f"{path}: async end without begin for cat={key[0]} "
                    f"id={key[1]} (event #{i})")
                n = 0
            async_open[key] = n
            stack = async_stack.setdefault(key, [])
            if ph == "b":
                stack.append((ts, ev.get("tid")))
            elif stack:
                begin_ts, tid = stack.pop()
                row = intervals.setdefault((ev.get("pid"), tid), [])
                row.append((begin_ts, ts))
        elif ph == "X":
            dur = ev.get("dur")
            if dur is None or dur < 0:
                problems.append(
                    f"{path}: X slice '{ev.get('name')}' (event #{i}) has "
                    f"missing/negative dur {dur}")
            else:
                row = intervals.setdefault((ev.get("pid"), ev.get("tid")), [])
                row.append((ts, ts + dur))
            if ev.get("cat") == "serve-grid":
                grid_slices += 1
                args = ev.get("args", {})
                if "batch" not in args:
                    problems.append(
                        f"{path}: serve-grid slice '{ev.get('name')}' "
                        f"(event #{i}) has no args.batch")
                if "request" not in args:
                    problems.append(
                        f"{path}: serve-grid slice '{ev.get('name')}' "
                        f"(event #{i}) has no args.request")
        elif ph == "s" or ph == "f":
            key = (ev.get("cat"), ev.get("id"))
            entry = flows.setdefault(key, [0, 0])
            entry[0 if ph == "s" else 1] += 1
            flow_events.append((i, ph, ev.get("pid"), ev.get("tid"), ts,
                                ev.get("cat"), ev.get("id")))
        elif ph == "i" and ev.get("cat") == "serve-attribution":
            attribution = (i, ev.get("args", {}))

    for (cat, aid, pid), n in sorted(
            async_open.items(), key=lambda kv: str(kv[0])):
        if n != 0:
            problems.append(
                f"{path}: {n} unclosed async span(s) for cat={cat} id={aid} "
                f"pid={pid}")
    for (cat, fid), (starts, ends) in sorted(
            flows.items(), key=lambda kv: str(kv[0])):
        if starts != ends:
            problems.append(
                f"{path}: flow cat={cat} id={fid} has {starts} start(s) but "
                f"{ends} end(s)")

    # Unified-trace checks: only when the file carries the cross-layer tier.
    if grid_slices > 0:
        # Every flow endpoint must bind inside a real slice/span on its row
        # ("bp":"e" binding) — an arrow into thin air means a producer bug or
        # an eviction that left a dangling reference.
        for i, ph, pid, tid, ts, cat, fid in flow_events:
            row = intervals.get((pid, tid), [])
            if not any(b <= ts <= e for b, e in row):
                problems.append(
                    f"{path}: flow {ph} cat={cat} id={fid} (event #{i}) at "
                    f"ts={ts} lands outside every slice on pid={pid} "
                    f"tid={tid}")
        if attribution is not None:
            i, args = attribution
            per_request = args.get("per_request")
            total = args.get("total")
            if not isinstance(per_request, list) or total is None:
                problems.append(
                    f"{path}: serve-attribution event #{i} is missing "
                    f"per_request/total")
            else:
                # Bit-exact by construction: the producer folds the same
                # doubles in the same (completion) order and serializes with
                # round-trip precision, so Python's left-to-right float sum
                # must reproduce the total identically — no tolerance.
                acc = 0.0
                for entry in per_request:
                    acc += entry[2]
                if acc != total:
                    problems.append(
                        f"{path}: attribution conservation violated: "
                        f"per-request cycles sum to {acc!r} but total is "
                        f"{total!r}")


def check_serve(path, problems):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        problems.append(f"{path}: not readable/parsable JSON: {e}")
        return
    records = doc.get("records")
    if not isinstance(records, list):
        problems.append(f"{path}: missing 'records' array")
        return
    for rec in records:
        name = rec.get("scenario", "?")
        ok = rec.get("ok", 0)
        expired = rec.get("expired", 0)
        shed = rec.get("shed", 0)
        submitted = rec.get("submitted", 0)
        if ok + expired + shed != submitted:
            problems.append(
                f"{path}: scenario '{name}': ok+expired+shed = "
                f"{ok + expired + shed} != submitted {submitted}")
        split = rec.get("p99_split")
        if split is not None:
            total = sum(split.get(k, 0.0)
                        for k in ("queue", "batch", "exec", "retry"))
            p99 = rec.get("p99_us", 0.0)
            # The four shares tile the p99 request's lifetime; allow
            # accumulated float rounding proportional to magnitude.
            tol = max(1e-6 * max(abs(p99), 1.0), 1e-6)
            if abs(total - p99) > tol:
                problems.append(
                    f"{path}: scenario '{name}': p99_split sums to {total} "
                    f"but p99_us is {p99}")
        tenants = rec.get("tenants")
        if tenants is not None:
            t_ok = sum(t.get("ok", 0) for t in tenants)
            if t_ok != ok:
                problems.append(
                    f"{path}: scenario '{name}': tenant ok counts sum to "
                    f"{t_ok} but record ok is {ok}")
            cycles_total = rec.get("device_cycles_total", 0.0)
            t_cycles = sum(t.get("device_cycles", 0.0) for t in tenants)
            # Per-tenant folds regroup the same per-completion doubles, so
            # only float-regrouping error is allowed (the completion-order
            # fold itself is checked bit-exactly against the trace).
            tol = max(1e-9 * max(abs(cycles_total), 1.0), 1e-9)
            if abs(t_cycles - cycles_total) > tol:
                problems.append(
                    f"{path}: scenario '{name}': tenant device cycles sum "
                    f"to {t_cycles!r} but device_cycles_total is "
                    f"{cycles_total!r}")
            for t in tenants:
                if t.get("fault_device_cycles", 0.0) > \
                        t.get("device_cycles", 0.0) + 1e-9:
                    problems.append(
                        f"{path}: scenario '{name}': tenant "
                        f"{t.get('tenant')} fault cycles exceed its device "
                        f"cycles")
        for series in rec.get("telemetry", []):
            pts = series.get("points", [])
            # Non-decreasing, not strictly increasing: distinct shards can
            # legitimately sample at the same virtual instant.
            for a, b in zip(pts, pts[1:]):
                if b[0] < a[0]:
                    problems.append(
                        f"{path}: scenario '{name}': series "
                        f"'{series.get('name')}' timestamps out of order "
                        f"at t={b[0]}")
                    break


def main():
    ap = argparse.ArgumentParser(
        description="validate nestpar trace/serve artifacts")
    ap.add_argument("--trace", action="append", default=[],
                    help="trace-event JSON file to check (repeatable)")
    ap.add_argument("--serve", action="append", default=[],
                    help="SERVE_*.json results file to check (repeatable)")
    args = ap.parse_args()
    if not args.trace and not args.serve:
        ap.error("nothing to check: pass --trace and/or --serve")

    problems = []
    for path in args.trace:
        check_trace(path, problems)
    for path in args.serve:
        check_serve(path, problems)

    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        print(f"{len(problems)} problem(s) found", file=sys.stderr)
        return 1
    total = len(args.trace) + len(args.serve)
    print(f"ok: {total} file(s) validated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
