// Profile analyzer for PROF_<suite>.json files written by
// `nestpar_bench --profile --out=DIR` (see bench/results.h).
//
//   nestpar_prof PATH [--top=N]
//   nestpar_prof --critpath PATH [--top=N] [--folded=FILE]
//   nestpar_prof --diff BASELINE CURRENT [--top=N] [--threshold=0.05]
//                [--strict]
//
// PATH is one profile file or a directory of PROF_*.json files. The report
// shows, per suite: the top-N kernels by busy cycles with their
// load-imbalance factor (max/mean per-block cycles) and warp efficiency, a
// per-template warp-efficiency rollup, the nesting-depth table, and the
// recorded counter tracks.
//
// `--critpath` switches to the critical-path report (schema v2 profiles):
// the makespan attribution by edge category, a per-template bottleneck
// verdict (launch-bound / imbalance-bound / dependency-bound /
// compute-bound), and the binding chain of the longest session printed
// top-down from the last-finishing grid. `--folded=FILE` additionally
// writes the critical-path cycles as folded flamegraph stacks
// ("suite;kernel-ancestry;[category] cycles" — flamegraph.pl / speedscope
// format).
//
// `--diff` matches kernels by name across two profile sets and reports
// busy-cycle and imbalance movements beyond the threshold as improvements or
// regressions. By default the diff is an annotation and exits 0; `--strict`
// turns annotated drift into exit code 1 so CI can gate on it. A schema
// upgrade between the two sides is noted, never fatal.
//
// Exit codes: 0 report printed (with --strict: no drift), 1 drift under
// --strict, 2 usage or I/O error.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/results.h"
#include "src/simt/critpath.h"
#include "src/simt/log.h"
#include "src/simt/profiler.h"

namespace {

namespace fs = std::filesystem;
namespace bench = nestpar::bench;
namespace simt = nestpar::simt;
namespace slog = nestpar::simt::log;

constexpr const char* kUsage =
    "usage: nestpar_prof PATH [--top=N]\n"
    "       nestpar_prof --critpath PATH [--top=N] [--folded=FILE]\n"
    "       nestpar_prof --diff BASELINE CURRENT [--top=N] "
    "[--threshold=0.05] [--strict]\n"
    "  PATH is a PROF_<suite>.json file or a directory of them";

// Loads one file, or every PROF_*.json inside a directory, keyed by suite.
std::map<std::string, bench::SuiteProfile> load(const std::string& path) {
  std::map<std::string, bench::SuiteProfile> by_suite;
  std::vector<std::string> files;
  if (fs::is_directory(path)) {
    for (const fs::directory_entry& e : fs::directory_iterator(path)) {
      const std::string name = e.path().filename().string();
      if (e.is_regular_file() && name.rfind("PROF_", 0) == 0 &&
          name.size() > 5 && name.substr(name.size() - 5) == ".json") {
        files.push_back(e.path().string());
      }
    }
    std::sort(files.begin(), files.end());
  } else {
    files.push_back(path);
  }
  for (const std::string& f : files) {
    bench::SuiteProfile p = bench::load_profile_file(f);
    if (by_suite.count(p.suite)) {
      throw std::runtime_error("duplicate suite '" + p.suite + "' in " + path);
    }
    by_suite.emplace(p.suite, std::move(p));
  }
  if (by_suite.empty()) {
    throw std::runtime_error("no PROF_*.json files found in " + path);
  }
  return by_suite;
}

/// Template segment of a "workload/template/phase" kernel name: the second
/// '/'-separated segment when present ("sssp/dbuf-shared/main" ->
/// "dbuf-shared", "sssp/update" -> "update"), else the whole name.
std::string template_of(const std::string& kernel) {
  const auto first = kernel.find('/');
  if (first == std::string::npos) return kernel;
  const auto second = kernel.find('/', first + 1);
  if (second == std::string::npos) return kernel.substr(first + 1);
  return kernel.substr(first + 1, second - first - 1);
}

std::vector<const simt::KernelProfile*> by_busy_cycles(
    const simt::ProfileSnapshot& p) {
  std::vector<const simt::KernelProfile*> order;
  order.reserve(p.kernels.size());
  for (const simt::KernelProfile& k : p.kernels) order.push_back(&k);
  std::stable_sort(order.begin(), order.end(),
                   [](const simt::KernelProfile* a,
                      const simt::KernelProfile* b) {
                     return a->busy_cycles > b->busy_cycles;
                   });
  return order;
}

void report_suite(const bench::SuiteProfile& profile, std::size_t top) {
  const simt::ProfileSnapshot& p = profile.prof;
  std::printf("suite %s: %.0f cycles over %llu report(s), %llu grids "
              "(%llu device-launched)\n",
              profile.suite.c_str(), p.total_cycles,
              static_cast<unsigned long long>(p.reports),
              static_cast<unsigned long long>(p.grids),
              static_cast<unsigned long long>(p.device_grids));

  const auto order = by_busy_cycles(p);
  std::printf("  %-44s %10s %14s %9s %8s\n", "kernel", "grids", "busy-cycles",
              "imbal", "warp-eff");
  for (std::size_t i = 0; i < order.size() && i < top; ++i) {
    const simt::KernelProfile& k = *order[i];
    std::printf("  %-44s %10llu %14.0f %9.2f %7.1f%%\n", k.name.c_str(),
                static_cast<unsigned long long>(k.invocations), k.busy_cycles,
                k.imbalance(), k.warp_efficiency() * 100.0);
  }
  if (order.size() > top) {
    std::printf("  ... %zu more kernel(s)\n", order.size() - top);
  }

  // Warp-efficiency rollup per template (middle name segment), weighted by
  // each kernel's issued warp-instruction groups.
  struct Roll {
    std::uint64_t warp_steps = 0;
    std::uint64_t active_lane_ops = 0;
    double busy_cycles = 0.0;
  };
  std::map<std::string, Roll> rollup;
  for (const simt::KernelProfile& k : p.kernels) {
    Roll& r = rollup[template_of(k.name)];
    r.warp_steps += k.warp_steps;
    r.active_lane_ops += k.active_lane_ops;
    r.busy_cycles += k.busy_cycles;
  }
  std::printf("  per-template warp efficiency:\n");
  for (const auto& [tmpl, r] : rollup) {
    const double eff =
        r.warp_steps == 0 ? 0.0
                          : static_cast<double>(r.active_lane_ops) /
                                (32.0 * static_cast<double>(r.warp_steps));
    std::printf("    %-30s %7.1f%%  (%.0f busy cycles)\n", tmpl.c_str(),
                eff * 100.0, r.busy_cycles);
  }

  if (!p.depth_grids.empty()) {
    std::printf("  grids by nesting depth:");
    for (const auto& [depth, n] : p.depth_grids) {
      std::printf("  %u:%llu", depth, static_cast<unsigned long long>(n));
    }
    std::printf("\n");
  }

  if (!p.tracks.empty()) {
    std::printf("  tracks:\n");
    for (const auto& [name, h] : p.tracks) {
      std::printf("    %-44s n=%llu mean=%.2f min=%.0f max=%.0f\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  h.mean(), h.min_value, h.max_value);
    }
  }
  std::printf("\n");
}

// -- Critical-path report (--critpath) --------------------------------------

void report_critpath(const bench::SuiteProfile& profile, std::size_t top) {
  const simt::ProfileSnapshot& p = profile.prof;
  const double attributed = p.crit_total.total();
  std::printf("suite %s: critical path over %llu report(s), %.0f cycles "
              "attributed\n",
              profile.suite.c_str(),
              static_cast<unsigned long long>(p.reports), attributed);
  if (attributed <= 0.0) {
    std::printf("  no critical-path data (schema v%d profile; regenerate "
                "with this build's nestpar_bench --profile)\n\n",
                profile.schema_version);
    return;
  }

  std::printf("  attribution (== sum of session makespans):\n");
  for (int i = 0; i < simt::kCritCategoryCount; ++i) {
    const auto cat = static_cast<simt::CritCategory>(i);
    const double cycles = p.crit_total[cat];
    std::printf("    %-12s %16.0f cycles  %5.1f%%\n",
                std::string(simt::to_string(cat)).c_str(), cycles,
                attributed > 0.0 ? 100.0 * cycles / attributed : 0.0);
  }

  const auto by_template = simt::attribution_by_template(p.crit_kernels);
  std::printf("  per-template bottleneck verdicts:\n");
  for (const auto& [tmpl, attr] : by_template) {
    const simt::CritVerdict verdict = simt::classify_bottleneck(attr);
    const double total = attr.total();
    const auto share = [&](simt::CritCategory c) {
      return total > 0.0 ? 100.0 * attr[c] / total : 0.0;
    };
    std::printf("    %-30s %-16s (compute %.1f%%, imbalance %.1f%%, "
                "launch %.1f%%, dep %.1f%% of %.0f cycles)\n",
                tmpl.c_str(),
                std::string(simt::to_string(verdict)).c_str(),
                share(simt::CritCategory::kCompute) +
                    share(simt::CritCategory::kFault),
                share(simt::CritCategory::kImbalance),
                share(simt::CritCategory::kLaunch) +
                    share(simt::CritCategory::kOccupancy),
                share(simt::CritCategory::kDepWait) +
                    share(simt::CritCategory::kStreamWait),
                total);
  }

  if (!p.crit_chain.empty()) {
    // Top-down: from the last-finishing grid backwards in time.
    const std::size_t limit = std::max<std::size_t>(top * 2, 20);
    std::printf("  binding chain (longest session, makespan %.0f cycles, "
                "top-down):\n",
                p.crit_chain_makespan);
    std::printf("    %14s  %-12s %s\n", "cycles", "category",
                "kernel (depth)");
    std::size_t shown = 0;
    for (auto it = p.crit_chain.rbegin();
         it != p.crit_chain.rend() && shown < limit; ++it) {
      if (it->cycles <= 0.0 &&
          it->category != simt::CritCategory::kStreamWait) {
        continue;
      }
      std::printf("    %14.0f  %-12s %s (%u)\n", it->cycles,
                  std::string(simt::to_string(it->category)).c_str(),
                  it->kernel.c_str(), it->depth);
      ++shown;
    }
    if (p.crit_chain.size() > shown) {
      std::printf("    ... %zu more segment(s)\n",
                  p.crit_chain.size() - shown);
    }
  }
  std::printf("\n");
}

/// Appends every suite's folded critical-path stacks to `out`, prefixing
/// frames with the suite name so one file holds a whole run's flamegraph.
void write_folded(std::FILE* out,
                  const std::map<std::string, bench::SuiteProfile>& profiles) {
  for (const auto& [suite, p] : profiles) {
    for (const auto& [stack, cycles] : p.prof.crit_folded) {
      std::fprintf(out, "%s;%s %lld\n", suite.c_str(), stack.c_str(),
                   static_cast<long long>(std::llround(cycles)));
    }
  }
}

void diff_suite(const bench::SuiteProfile& base,
                const bench::SuiteProfile& cur, double threshold,
                int& moved) {
  if (base.schema_version != cur.schema_version) {
    // A regenerated baseline under a newer schema is expected, not drift:
    // note it and keep comparing the metrics both versions carry.
    std::printf("  note: schema upgraded (baseline v%d, current v%d); "
                "comparing shared metrics only\n",
                base.schema_version, cur.schema_version);
  }
  for (const simt::KernelProfile& b : base.prof.kernels) {
    const simt::KernelProfile* c = cur.prof.find(b.name);
    if (c == nullptr) {
      std::printf("  %-44s missing from current\n", b.name.c_str());
      ++moved;
      continue;
    }
    const auto classify = [&](double bv, double cv, bool up_is_bad,
                              const char* metric) {
      const double denom = std::max(std::abs(bv), 1e-12);
      const double rel = (cv - bv) / denom;
      if (std::abs(rel) <= threshold) return;
      const bool bad = up_is_bad ? rel > 0 : rel < 0;
      std::printf("  %-44s %-10s %12.2f -> %12.2f (%+6.1f%%) %s\n",
                  b.name.c_str(), metric, bv, cv, rel * 100.0,
                  bad ? "REGRESSED" : "IMPROVED");
      ++moved;
    };
    classify(b.busy_cycles, c->busy_cycles, /*up_is_bad=*/true, "busy");
    classify(b.imbalance(), c->imbalance(), /*up_is_bad=*/true, "imbal");
    classify(b.warp_efficiency(), c->warp_efficiency(), /*up_is_bad=*/false,
             "warp-eff");
  }
  for (const simt::KernelProfile& c : cur.prof.kernels) {
    if (base.prof.find(c.name) == nullptr) {
      std::printf("  %-44s new in current\n", c.name.c_str());
    }
  }
}

int run_diff(const std::string& base_path, const std::string& cur_path,
             std::size_t top, double threshold, bool strict) {
  (void)top;
  std::map<std::string, bench::SuiteProfile> base;
  std::map<std::string, bench::SuiteProfile> cur;
  try {
    base = load(base_path);
    cur = load(cur_path);
  } catch (const std::runtime_error& e) {
    slog::error("error: %s\n", e.what());
    return 2;
  }
  int moved = 0;
  for (const auto& [suite, b] : base) {
    const auto it = cur.find(suite);
    if (it == cur.end()) {
      std::printf("suite %-24s MISSING from current\n", suite.c_str());
      ++moved;
      continue;
    }
    std::printf("suite %s:\n", suite.c_str());
    diff_suite(b, it->second, threshold, moved);
  }
  for (const auto& [suite, c] : cur) {
    if (!base.count(suite)) {
      std::printf("suite %-24s new in current (no baseline)\n", suite.c_str());
    }
  }
  std::printf("\n%d profile metric(s) moved beyond %.1f%%\n", moved,
              threshold * 100.0);
  // Annotation by default; a gate only when the caller asked for one.
  return strict && moved > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool diff = false;
  bool critpath = false;
  bool strict = false;
  std::size_t top = 10;
  double threshold = 0.05;
  std::string folded_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s\n", kUsage);
      return 0;
    } else if (arg == "--diff") {
      diff = true;
    } else if (arg == "--critpath") {
      critpath = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg.rfind("--folded=", 0) == 0) {
      folded_path = arg.substr(9);
    } else if (arg.rfind("--top=", 0) == 0) {
      top = static_cast<std::size_t>(std::stoul(arg.substr(6)));
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::stod(arg.substr(12));
    } else if (arg.rfind("--", 0) == 0) {
      slog::error("unknown argument '%s'\n%s\n", arg.c_str(), kUsage);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (diff) {
    if (paths.size() != 2) {
      slog::error("--diff needs exactly two paths\n%s\n", kUsage);
      return 2;
    }
    return run_diff(paths[0], paths[1], top, threshold, strict);
  }
  if (paths.size() != 1) {
    slog::error("%s\n", kUsage);
    return 2;
  }
  std::map<std::string, bench::SuiteProfile> profiles;
  try {
    profiles = load(paths[0]);
  } catch (const std::runtime_error& e) {
    slog::error("error: %s\n", e.what());
    return 2;
  }
  for (const auto& [suite, p] : profiles) {
    critpath ? report_critpath(p, top) : report_suite(p, top);
  }
  if (!folded_path.empty()) {
    std::FILE* f = std::fopen(folded_path.c_str(), "wb");
    if (f == nullptr) {
      slog::error("error: cannot open '%s' for writing\n",
                  folded_path.c_str());
      return 2;
    }
    write_folded(f, profiles);
    std::fclose(f);
    std::printf("wrote folded stacks to %s\n", folded_path.c_str());
  }
  return 0;
}
