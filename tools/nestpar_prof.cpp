// Profile analyzer for PROF_<suite>.json files written by
// `nestpar_bench --profile --out=DIR` (see bench/results.h).
//
//   nestpar_prof PATH [--top=N]
//   nestpar_prof --diff BASELINE CURRENT [--top=N] [--threshold=0.05]
//
// PATH is one profile file or a directory of PROF_*.json files. The report
// shows, per suite: the top-N kernels by busy cycles with their
// load-imbalance factor (max/mean per-block cycles) and warp efficiency, a
// per-template warp-efficiency rollup, the nesting-depth table, and the
// recorded counter tracks.
//
// `--diff` matches kernels by name across two profile sets and reports
// busy-cycle and imbalance movements beyond the threshold as improvements or
// regressions. The diff is an annotation, not a gate: it always exits 0
// unless something failed to load.
//
// Exit codes: 0 report printed (even with diffs), 2 usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/results.h"
#include "src/simt/log.h"
#include "src/simt/profiler.h"

namespace {

namespace fs = std::filesystem;
namespace bench = nestpar::bench;
namespace simt = nestpar::simt;
namespace slog = nestpar::simt::log;

constexpr const char* kUsage =
    "usage: nestpar_prof PATH [--top=N]\n"
    "       nestpar_prof --diff BASELINE CURRENT [--top=N] "
    "[--threshold=0.05]\n"
    "  PATH is a PROF_<suite>.json file or a directory of them";

// Loads one file, or every PROF_*.json inside a directory, keyed by suite.
std::map<std::string, bench::SuiteProfile> load(const std::string& path) {
  std::map<std::string, bench::SuiteProfile> by_suite;
  std::vector<std::string> files;
  if (fs::is_directory(path)) {
    for (const fs::directory_entry& e : fs::directory_iterator(path)) {
      const std::string name = e.path().filename().string();
      if (e.is_regular_file() && name.rfind("PROF_", 0) == 0 &&
          name.size() > 5 && name.substr(name.size() - 5) == ".json") {
        files.push_back(e.path().string());
      }
    }
    std::sort(files.begin(), files.end());
  } else {
    files.push_back(path);
  }
  for (const std::string& f : files) {
    bench::SuiteProfile p = bench::load_profile_file(f);
    if (by_suite.count(p.suite)) {
      throw std::runtime_error("duplicate suite '" + p.suite + "' in " + path);
    }
    by_suite.emplace(p.suite, std::move(p));
  }
  if (by_suite.empty()) {
    throw std::runtime_error("no PROF_*.json files found in " + path);
  }
  return by_suite;
}

/// Template segment of a "workload/template/phase" kernel name: the second
/// '/'-separated segment when present ("sssp/dbuf-shared/main" ->
/// "dbuf-shared", "sssp/update" -> "update"), else the whole name.
std::string template_of(const std::string& kernel) {
  const auto first = kernel.find('/');
  if (first == std::string::npos) return kernel;
  const auto second = kernel.find('/', first + 1);
  if (second == std::string::npos) return kernel.substr(first + 1);
  return kernel.substr(first + 1, second - first - 1);
}

std::vector<const simt::KernelProfile*> by_busy_cycles(
    const simt::ProfileSnapshot& p) {
  std::vector<const simt::KernelProfile*> order;
  order.reserve(p.kernels.size());
  for (const simt::KernelProfile& k : p.kernels) order.push_back(&k);
  std::stable_sort(order.begin(), order.end(),
                   [](const simt::KernelProfile* a,
                      const simt::KernelProfile* b) {
                     return a->busy_cycles > b->busy_cycles;
                   });
  return order;
}

void report_suite(const bench::SuiteProfile& profile, std::size_t top) {
  const simt::ProfileSnapshot& p = profile.prof;
  std::printf("suite %s: %.0f cycles over %llu report(s), %llu grids "
              "(%llu device-launched)\n",
              profile.suite.c_str(), p.total_cycles,
              static_cast<unsigned long long>(p.reports),
              static_cast<unsigned long long>(p.grids),
              static_cast<unsigned long long>(p.device_grids));

  const auto order = by_busy_cycles(p);
  std::printf("  %-44s %10s %14s %9s %8s\n", "kernel", "grids", "busy-cycles",
              "imbal", "warp-eff");
  for (std::size_t i = 0; i < order.size() && i < top; ++i) {
    const simt::KernelProfile& k = *order[i];
    std::printf("  %-44s %10llu %14.0f %9.2f %7.1f%%\n", k.name.c_str(),
                static_cast<unsigned long long>(k.invocations), k.busy_cycles,
                k.imbalance(), k.warp_efficiency() * 100.0);
  }
  if (order.size() > top) {
    std::printf("  ... %zu more kernel(s)\n", order.size() - top);
  }

  // Warp-efficiency rollup per template (middle name segment), weighted by
  // each kernel's issued warp-instruction groups.
  struct Roll {
    std::uint64_t warp_steps = 0;
    std::uint64_t active_lane_ops = 0;
    double busy_cycles = 0.0;
  };
  std::map<std::string, Roll> rollup;
  for (const simt::KernelProfile& k : p.kernels) {
    Roll& r = rollup[template_of(k.name)];
    r.warp_steps += k.warp_steps;
    r.active_lane_ops += k.active_lane_ops;
    r.busy_cycles += k.busy_cycles;
  }
  std::printf("  per-template warp efficiency:\n");
  for (const auto& [tmpl, r] : rollup) {
    const double eff =
        r.warp_steps == 0 ? 0.0
                          : static_cast<double>(r.active_lane_ops) /
                                (32.0 * static_cast<double>(r.warp_steps));
    std::printf("    %-30s %7.1f%%  (%.0f busy cycles)\n", tmpl.c_str(),
                eff * 100.0, r.busy_cycles);
  }

  if (!p.depth_grids.empty()) {
    std::printf("  grids by nesting depth:");
    for (const auto& [depth, n] : p.depth_grids) {
      std::printf("  %u:%llu", depth, static_cast<unsigned long long>(n));
    }
    std::printf("\n");
  }

  if (!p.tracks.empty()) {
    std::printf("  tracks:\n");
    for (const auto& [name, h] : p.tracks) {
      std::printf("    %-44s n=%llu mean=%.2f min=%.0f max=%.0f\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  h.mean(), h.min_value, h.max_value);
    }
  }
  std::printf("\n");
}

void diff_suite(const bench::SuiteProfile& base,
                const bench::SuiteProfile& cur, double threshold,
                int& moved) {
  for (const simt::KernelProfile& b : base.prof.kernels) {
    const simt::KernelProfile* c = cur.prof.find(b.name);
    if (c == nullptr) {
      std::printf("  %-44s missing from current\n", b.name.c_str());
      ++moved;
      continue;
    }
    const auto classify = [&](double bv, double cv, bool up_is_bad,
                              const char* metric) {
      const double denom = std::max(std::abs(bv), 1e-12);
      const double rel = (cv - bv) / denom;
      if (std::abs(rel) <= threshold) return;
      const bool bad = up_is_bad ? rel > 0 : rel < 0;
      std::printf("  %-44s %-10s %12.2f -> %12.2f (%+6.1f%%) %s\n",
                  b.name.c_str(), metric, bv, cv, rel * 100.0,
                  bad ? "REGRESSED" : "IMPROVED");
      ++moved;
    };
    classify(b.busy_cycles, c->busy_cycles, /*up_is_bad=*/true, "busy");
    classify(b.imbalance(), c->imbalance(), /*up_is_bad=*/true, "imbal");
    classify(b.warp_efficiency(), c->warp_efficiency(), /*up_is_bad=*/false,
             "warp-eff");
  }
  for (const simt::KernelProfile& c : cur.prof.kernels) {
    if (base.prof.find(c.name) == nullptr) {
      std::printf("  %-44s new in current\n", c.name.c_str());
    }
  }
}

int run_diff(const std::string& base_path, const std::string& cur_path,
             std::size_t top, double threshold) {
  (void)top;
  std::map<std::string, bench::SuiteProfile> base;
  std::map<std::string, bench::SuiteProfile> cur;
  try {
    base = load(base_path);
    cur = load(cur_path);
  } catch (const std::runtime_error& e) {
    slog::error("error: %s\n", e.what());
    return 2;
  }
  int moved = 0;
  for (const auto& [suite, b] : base) {
    const auto it = cur.find(suite);
    if (it == cur.end()) {
      std::printf("suite %-24s MISSING from current\n", suite.c_str());
      ++moved;
      continue;
    }
    std::printf("suite %s:\n", suite.c_str());
    diff_suite(b, it->second, threshold, moved);
  }
  for (const auto& [suite, c] : cur) {
    if (!base.count(suite)) {
      std::printf("suite %-24s new in current (no baseline)\n", suite.c_str());
    }
  }
  std::printf("\n%d profile metric(s) moved beyond %.1f%%\n", moved,
              threshold * 100.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool diff = false;
  std::size_t top = 10;
  double threshold = 0.05;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s\n", kUsage);
      return 0;
    } else if (arg == "--diff") {
      diff = true;
    } else if (arg.rfind("--top=", 0) == 0) {
      top = static_cast<std::size_t>(std::stoul(arg.substr(6)));
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::stod(arg.substr(12));
    } else if (arg.rfind("--", 0) == 0) {
      slog::error("unknown argument '%s'\n%s\n", arg.c_str(), kUsage);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (diff) {
    if (paths.size() != 2) {
      slog::error("--diff needs exactly two paths\n%s\n", kUsage);
      return 2;
    }
    return run_diff(paths[0], paths[1], top, threshold);
  }
  if (paths.size() != 1) {
    slog::error("%s\n", kUsage);
    return 2;
  }
  std::map<std::string, bench::SuiteProfile> profiles;
  try {
    profiles = load(paths[0]);
  } catch (const std::runtime_error& e) {
    slog::error("error: %s\n", e.what());
    return 2;
  }
  for (const auto& [suite, p] : profiles) report_suite(p, top);
  return 0;
}
