#!/usr/bin/env bash
# Verify that documentation references resolve to real files:
#   1. relative markdown links ([text](target)), resolved against the
#      directory of the doc that contains them;
#   2. bare `path/file.ext` references to checked-in files, limited to paths
#      rooted at a repo top-level directory (src/, docs/, bench/, tests/,
#      tools/, examples/) so prose mentions of external repos don't trip it.
# External (http/https) links and intra-page anchors are skipped. Exits
# non-zero listing broken references, so CI can gate on documentation rot.
set -u

cd "$(dirname "$0")/.."

DOCS=(README.md EXPERIMENTS.md DESIGN.md ROADMAP.md CHANGES.md docs/*.md)

fail=0

# 1. Markdown links, resolved relative to the referencing document.
for doc in "${DOCS[@]}"; do
  [ -f "$doc" ] || continue
  docdir=$(dirname "$doc")
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"   # strip intra-page anchor
    [ -z "$path" ] && continue
    if [ ! -e "$docdir/$path" ] && [ ! -e "$path" ]; then
      echo "BROKEN LINK: $doc -> $target"
      fail=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" 2>/dev/null |
           sed 's/.*](\([^)]*\))/\1/')
done

# 2. Bare file references rooted at a repo top-level directory.
for doc in "${DOCS[@]}"; do
  [ -f "$doc" ] || continue
  while IFS= read -r ref; do
    case "$ref" in
      src/*|docs/*|bench/*|tests/*|tools/*|examples/*) ;;
      *) continue ;;
    esac
    if [ ! -e "$ref" ]; then
      echo "BROKEN FILE REF: $doc -> $ref"
      fail=1
    fi
  done < <(grep -o '`[A-Za-z0-9_./-]*\.\(md\|h\|cpp\|sh\|yml\|json\|txt\)`' \
             "$doc" 2>/dev/null | tr -d '\`' | grep '/' | sort -u)
done

if [ "$fail" -ne 0 ]; then
  echo "Documentation link check FAILED."
  exit 1
fi
echo "Documentation link check passed."
