// nestpar_serve: drive the src/serve runtime once and print a full serving
// report — terminal-status counts, latency percentiles, per-shard activity,
// and every breaker transition on the virtual timeline. The interactive twin
// of the serve_latency bench suite: same deterministic runtime, human-first
// output for poking at one configuration.
//
//   nestpar_serve [--requests=N] [--qps=Q] [--shards=N] [--queue=N]
//                 [--batch=N] [--linger-us=X] [--deadline-us=X]
//                 [--attempts=N] [--no-hedge] [--tmpl=NAME] [--graphs=N]
//                 [--scale=F] [--seed=N] [--num-tenants=N] [--faults=SPEC]
//                 [--completions] [--trace=FILE] [--metrics] [--tenants]
//                 [--json] [--metrics-interval-us=X]
//
// --trace writes the run's unified cross-layer trace (request spans, per-grid
// device slices, telemetry counters, and the per-request device-cycle
// attribution record) as a Chrome/Perfetto trace-event file; --metrics
// appends a latency-attribution report to stdout; --tenants appends the
// per-tenant device-cost rollup. All are pure observers: with the flags
// absent, stdout is byte-identical to earlier builds. --json replaces the
// human report with one machine-readable JSON document (stable field order,
// round-trip number formatting) for scripting and CI gates.
//
// Exit codes: 0 success (all queries terminal, zero wrong results),
// 1 verification or accounting failure, 2 usage error.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json.h"
#include "src/serve/pool.h"
#include "src/serve/server.h"
#include "src/serve/trace.h"
#include "src/simt/exec_policy.h"
#include "src/simt/log.h"

using namespace nestpar;

namespace {

constexpr const char* kUsage =
    "usage: nestpar_serve [--requests=N] [--qps=Q] [--shards=N] [--queue=N]\n"
    "  [--batch=N] [--linger-us=X] [--deadline-us=X] [--attempts=N]\n"
    "  [--no-hedge] [--tmpl=NAME] [--graphs=N] [--scale=F] [--seed=N]\n"
    "  [--num-tenants=N] [--faults=SPEC] [--completions] [--tenants]\n"
    "  [--json]\n"
    "  --requests=N     queries to serve (default 200)\n"
    "  --qps=Q          open-loop arrival rate (default 3000)\n"
    "  --shards=N       simulated devices (default 4)\n"
    "  --queue=N        per-shard queue capacity (default 24)\n"
    "  --batch=N        max queries per consolidated dispatch (default 8)\n"
    "  --linger-us=X    partial-batch linger window (default 200)\n"
    "  --deadline-us=X  per-query latency budget (default 150000)\n"
    "  --attempts=N     execution attempts per query (default 3)\n"
    "  --no-hedge       back off in place instead of sibling re-dispatch\n"
    "  --tmpl=NAME      loop template for query execution (cons-grid)\n"
    "  --graphs=N       subgraph pool size (default 4)\n"
    "  --scale=F        subgraph size scale (default 0.5)\n"
    "  --seed=N         workload seed (default 2026)\n"
    "  --num-tenants=N  tenants the workload spreads over (default 4)\n"
    "  --faults=SPEC    fault injection (NESTPAR_FAULTS syntax; default from\n"
    "                   the environment)\n"
    "  --completions    also print one line per completed request\n"
    "  --trace=FILE     write the unified cross-layer trace (request spans,\n"
    "                   per-grid device slices, telemetry, attribution) as a\n"
    "                   Chrome/Perfetto trace-event JSON file\n"
    "  --metrics        print latency attribution: slowest requests with\n"
    "                   phase split + bottleneck verdict, per-shard\n"
    "                   utilization, SLO attainment\n"
    "  --tenants        print the per-tenant device-cost rollup (requests,\n"
    "                   launches, retries, attributed device cycles)\n"
    "  --json           emit the run report as one JSON document instead of\n"
    "                   the human tables (includes tenants + device cycles)\n"
    "  --metrics-interval-us=X  telemetry sampling tick in virtual us\n"
    "                   (default 1000; used by --trace and --metrics)";

/// Append the --metrics report: where the slow requests spent their time,
/// how busy each shard was, and how the run did against its deadline SLO.
void print_metrics(const serve::Server& server, const serve::ServeStats& s,
                   double deadline_us) {
  std::printf("\nlatency attribution (slowest requests):\n");
  std::printf("  %8s %-8s %10s %10s %10s %10s %10s  %s\n", "request", "status",
              "latency", "queue", "batch", "exec", "retry", "verdict");
  std::vector<const serve::Completion*> by_latency;
  by_latency.reserve(server.completions().size());
  for (const serve::Completion& c : server.completions()) {
    by_latency.push_back(&c);
  }
  std::sort(by_latency.begin(), by_latency.end(),
            [](const serve::Completion* a, const serve::Completion* b) {
              if (a->latency_us != b->latency_us) {
                return a->latency_us > b->latency_us;
              }
              return a->id < b->id;  // deterministic tie-break
            });
  const std::size_t top = std::min<std::size_t>(5, by_latency.size());
  for (std::size_t i = 0; i < top; ++i) {
    const serve::Completion& c = *by_latency[i];
    std::printf("  #%7llu %-8s %9.0fus %9.0fus %9.0fus %9.0fus %9.0fus  %s\n",
                static_cast<unsigned long long>(c.id),
                std::string(serve::to_string(c.status)).c_str(), c.latency_us,
                c.queue_us, c.batch_us, c.exec_us, c.retry_us,
                c.verdict.empty() ? "-" : c.verdict.c_str());
  }
  std::printf("  p99 split: queue=%.0fus batch=%.0fus exec=%.0fus "
              "retry=%.0fus (p99=%.0fus)\n",
              s.p99_queue_us, s.p99_batch_us, s.p99_exec_us, s.p99_retry_us,
              s.p99_us);

  std::printf("\nshard utilization (busy / makespan):\n");
  for (const serve::Shard& sh : server.shards()) {
    const double frac =
        s.makespan_us > 0.0 ? sh.counters().busy_us / s.makespan_us : 0.0;
    std::printf("  shard %d: %6.1f%% (%.0f us busy)\n", sh.id(), frac * 100.0,
                sh.counters().busy_us);
  }

  double burn_sum = 0.0;
  std::uint64_t burn_n = 0;
  for (const serve::Completion& c : server.completions()) {
    if (c.status == serve::RequestStatus::kOk && deadline_us > 0.0) {
      burn_sum += c.latency_us / deadline_us;
      ++burn_n;
    }
  }
  const double attained =
      s.submitted > 0
          ? static_cast<double>(s.ok) / static_cast<double>(s.submitted)
          : 0.0;
  std::printf("\nSLO attainment: %.1f%% ok (%llu/%llu)", attained * 100.0,
              static_cast<unsigned long long>(s.ok),
              static_cast<unsigned long long>(s.submitted));
  if (burn_n > 0) {
    std::printf(", mean deadline-budget burn %.1f%% over Ok",
                burn_sum / static_cast<double>(burn_n) * 100.0);
  }
  std::printf("\n");
}

/// Append the --tenants report: who burned the device. Cycles are modeled
/// device cycles attributed to each tenant's completed requests by the
/// scheduler's conservation-exact tiling; the per-tenant column sums to the
/// run's device_cycles_total (up to float regrouping across tenants).
void print_tenants(const serve::Server& server, const serve::ServeStats& s) {
  std::printf("\nper-tenant device cost:\n");
  std::printf("  %6s %8s %6s %8s %7s %16s %14s %6s\n", "tenant", "requests",
              "ok", "launches", "retries", "device-cycles", "fault-cycles",
              "share");
  for (const serve::TenantUsage& t : server.tenant_usage()) {
    const double share =
        s.device_cycles_total > 0.0 ? t.device_cycles / s.device_cycles_total
                                    : 0.0;
    std::printf("  %6u %8llu %6llu %8llu %7llu %16.0f %14.0f %5.1f%%\n",
                t.tenant, static_cast<unsigned long long>(t.requests),
                static_cast<unsigned long long>(t.ok),
                static_cast<unsigned long long>(t.launches),
                static_cast<unsigned long long>(t.retries), t.device_cycles,
                t.fault_device_cycles, share * 100.0);
  }
  std::printf("  total: %.0f device cycles over %llu launches "
              "(%.0f fault-burned)\n",
              s.device_cycles_total,
              static_cast<unsigned long long>(s.launches_total),
              s.fault_device_cycles_total);
}

/// The --json report: the whole run outcome as one machine-readable document
/// (stable field order; round-trip number formatting via bench::json_num, so
/// attributed cycles survive a parse bit-exactly).
void print_json(const serve::Server& server, const serve::ServeStats& s,
                const serve::ServeConfig& cfg, int requests, double qps) {
  using bench::json_num;
  std::string out;
  out += "{\n";
  out += "  \"generator\": \"nestpar_serve\",\n";
  out += "  \"config\": {\"requests\": " + json_num(std::uint64_t(requests)) +
         ", \"qps\": " + json_num(qps) +
         ", \"shards\": " + json_num(std::uint64_t(cfg.num_shards)) +
         ", \"num_tenants\": " + json_num(std::uint64_t(cfg.num_tenants)) +
         ", \"chaos\": " + (cfg.faults.enabled() ? "true" : "false") + "},\n";
  out += "  \"outcome\": {\"submitted\": " + json_num(s.submitted) +
         ", \"ok\": " + json_num(s.ok) +
         ", \"expired\": " + json_num(s.expired) +
         ", \"shed\": " + json_num(s.shed) +
         ", \"wrong\": " + json_num(s.wrong) + "},\n";
  out += "  \"activity\": {\"attempts\": " + json_num(s.attempts) +
         ", \"retries\": " + json_num(s.retries) +
         ", \"hedges\": " + json_num(s.hedges) +
         ", \"batches\": " + json_num(s.batches) +
         ", \"probes\": " + json_num(s.probes) +
         ", \"breaker_trips\": " + json_num(s.breaker_trips) +
         ", \"faults_injected\": " + json_num(s.faults_injected) +
         ", \"degraded\": " + json_num(s.degraded) + "},\n";
  out += "  \"latency_us\": {\"p50\": " + json_num(s.p50_us) +
         ", \"p95\": " + json_num(s.p95_us) +
         ", \"p99\": " + json_num(s.p99_us) +
         ", \"mean\": " + json_num(s.mean_us) +
         ", \"max\": " + json_num(s.max_us) +
         ", \"p99_split\": {\"queue\": " + json_num(s.p99_queue_us) +
         ", \"batch\": " + json_num(s.p99_batch_us) +
         ", \"exec\": " + json_num(s.p99_exec_us) +
         ", \"retry\": " + json_num(s.p99_retry_us) + "}},\n";
  out += "  \"throughput\": {\"qps_ok\": " + json_num(s.qps_ok) +
         ", \"makespan_us\": " + json_num(s.makespan_us) + "},\n";
  out += "  \"device\": {\"cycles_total\": " + json_num(s.device_cycles_total) +
         ", \"fault_cycles_total\": " +
         json_num(s.fault_device_cycles_total) +
         ", \"launches_total\": " + json_num(s.launches_total) + "},\n";
  out += "  \"tenants\": [";
  const std::vector<serve::TenantUsage>& tenants = server.tenant_usage();
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const serve::TenantUsage& t = tenants[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"tenant\": " + json_num(std::uint64_t(t.tenant)) +
           ", \"requests\": " + json_num(t.requests) +
           ", \"ok\": " + json_num(t.ok) +
           ", \"launches\": " + json_num(t.launches) +
           ", \"retries\": " + json_num(t.retries) +
           ", \"device_cycles\": " + json_num(t.device_cycles) +
           ", \"fault_device_cycles\": " + json_num(t.fault_device_cycles) +
           "}";
  }
  out += tenants.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  std::fputs(out.c_str(), stdout);
}

int run(const bench::Args& args) {
  const auto requests = static_cast<int>(args.get_int("requests", 200));
  const double qps = args.get_double("qps", 3000.0);

  serve::ServeConfig cfg;
  cfg.num_shards = static_cast<int>(args.get_int("shards", 4));
  cfg.queue_capacity = static_cast<int>(args.get_int("queue", 24));
  cfg.batch_max = static_cast<int>(args.get_int("batch", 8));
  cfg.batch_linger_us = args.get_double("linger-us", 200.0);
  cfg.deadline_us = args.get_double("deadline-us", 150000.0);
  cfg.max_attempts = static_cast<int>(args.get_int("attempts", 3));
  cfg.hedge = !args.get_flag("no-hedge");
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));
  cfg.num_tenants = static_cast<int>(args.get_int("num-tenants", 4));
  cfg.tmpl = nested::parse_loop_template(args.get_string("tmpl", "cons-grid"));
  const std::string faults_spec = args.get_string("faults", "");
  cfg.faults = faults_spec.empty() ? simt::FaultConfig::from_env()
                                   : simt::FaultConfig::parse(faults_spec);

  const std::string trace_path = args.get_string("trace", "");
  const bool want_metrics = args.get_flag("metrics");
  const bool want_tenants = args.get_flag("tenants");
  const bool want_json = args.get_flag("json");
  cfg.trace = !trace_path.empty();
  // Telemetry sampling is a pure observer; enable it only when an output
  // surface (trace counters or the metrics report) will consume it, so a
  // plain run stays byte-for-byte what it always was.
  if (cfg.trace || want_metrics) {
    cfg.metrics_interval_us = args.get_double("metrics-interval-us", 1000.0);
  }

  serve::PoolSpec pspec;
  pspec.num_graphs = static_cast<int>(args.get_int("graphs", 4));
  pspec.scale = args.get_double("scale", 0.5);
  pspec.seed = cfg.seed ^ 0x700full;

  const serve::SubgraphPool pool(pspec);
  const std::vector<serve::Request> workload =
      serve::make_open_loop_workload(pool, cfg, requests, qps);
  serve::Server server(cfg, pool, simt::ExecPolicy::from_env());
  const serve::ServeStats s = server.run(workload);

  if (want_json) {
    print_json(server, s, cfg, requests, qps);
    if (!trace_path.empty()) {
      std::ofstream f(trace_path, std::ios::binary);
      if (!f) {
        simt::log::error("error: cannot open trace file '%s'\n",
                         trace_path.c_str());
        return 1;
      }
      serve::write_serve_trace(f, server.tracer(), &server.telemetry(),
                               cfg.num_shards, &server.completions());
    }
    if (s.wrong > 0 || s.ok + s.expired + s.shed != s.submitted) return 1;
    return 0;
  }

  std::printf("serving run: %d requests at %.0f qps over %d shard(s), "
              "template %s%s\n",
              requests, qps, cfg.num_shards,
              std::string(nested::name(cfg.tmpl)).c_str(),
              cfg.faults.enabled() ? " [chaos]" : "");
  std::printf("  outcome    ok=%llu expired=%llu shed=%llu wrong=%llu "
              "(submitted=%llu)\n",
              static_cast<unsigned long long>(s.ok),
              static_cast<unsigned long long>(s.expired),
              static_cast<unsigned long long>(s.shed),
              static_cast<unsigned long long>(s.wrong),
              static_cast<unsigned long long>(s.submitted));
  std::printf("  activity   attempts=%llu retries=%llu hedges=%llu "
              "batches=%llu probes=%llu trips=%llu faults=%llu "
              "degraded=%llu\n",
              static_cast<unsigned long long>(s.attempts),
              static_cast<unsigned long long>(s.retries),
              static_cast<unsigned long long>(s.hedges),
              static_cast<unsigned long long>(s.batches),
              static_cast<unsigned long long>(s.probes),
              static_cast<unsigned long long>(s.breaker_trips),
              static_cast<unsigned long long>(s.faults_injected),
              static_cast<unsigned long long>(s.degraded));
  std::printf("  latency-us p50=%.0f p95=%.0f p99=%.0f mean=%.0f max=%.0f\n",
              s.p50_us, s.p95_us, s.p99_us, s.mean_us, s.max_us);
  std::printf("  throughput %.0f ok-qps over %.1f ms makespan\n", s.qps_ok,
              s.makespan_us / 1000.0);

  std::printf("\nper-shard:\n");
  for (const serve::Shard& sh : server.shards()) {
    const serve::ShardCounters& c = sh.counters();
    std::printf("  shard %d: batches=%llu attempts=%llu failed=%llu "
                "faults=%llu trips=%d final=%s\n",
                sh.id(), static_cast<unsigned long long>(c.batches),
                static_cast<unsigned long long>(c.attempts),
                static_cast<unsigned long long>(c.failed_attempts),
                static_cast<unsigned long long>(c.faults_injected),
                sh.breaker().trips(),
                std::string(serve::to_string(sh.breaker().state())).c_str());
    for (const serve::BreakerTransition& t : sh.breaker().transitions()) {
      std::printf("    %12.1f us  %s -> %s\n", t.time_us,
                  std::string(serve::to_string(t.from)).c_str(),
                  std::string(serve::to_string(t.to)).c_str());
    }
  }

  if (want_metrics) print_metrics(server, s, cfg.deadline_us);
  if (want_tenants) print_tenants(server, s);

  if (!trace_path.empty()) {
    std::ofstream f(trace_path, std::ios::binary);
    if (!f) {
      simt::log::error("error: cannot open trace file '%s'\n",
                       trace_path.c_str());
      return 1;
    }
    serve::write_serve_trace(f, server.tracer(), &server.telemetry(),
                             cfg.num_shards, &server.completions());
    std::printf("\nwrote trace: %s\n", trace_path.c_str());
  }

  if (args.get_flag("completions")) {
    std::printf("\ncompletions:\n");
    for (const serve::Completion& c : server.completions()) {
      std::printf("  #%llu %-8s %-7s shard=%d attempts=%d latency=%.0f us%s%s\n",
                  static_cast<unsigned long long>(c.id),
                  std::string(serve::to_string(c.kind)).c_str(),
                  std::string(serve::to_string(c.status)).c_str(), c.shard,
                  c.attempts, c.latency_us, c.hedged ? " hedged" : "",
                  c.status == serve::RequestStatus::kOk && !c.correct
                      ? " WRONG"
                      : "");
    }
  }

  if (s.wrong > 0) {
    simt::log::error("FAIL: %llu Ok result(s) failed verification\n",
                     static_cast<unsigned long long>(s.wrong));
    return 1;
  }
  if (s.ok + s.expired + s.shed != s.submitted) {
    simt::log::error("FAIL: request accounting broken\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const bench::Args args(argc, argv, kUsage);
    return run(args);
  } catch (const std::invalid_argument& e) {
    nestpar::simt::log::error("error: %s\n%s\n", e.what(), kUsage);
    return 2;
  }
}
