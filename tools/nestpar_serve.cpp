// nestpar_serve: drive the src/serve runtime once and print a full serving
// report — terminal-status counts, latency percentiles, per-shard activity,
// and every breaker transition on the virtual timeline. The interactive twin
// of the serve_latency bench suite: same deterministic runtime, human-first
// output for poking at one configuration.
//
//   nestpar_serve [--requests=N] [--qps=Q] [--shards=N] [--queue=N]
//                 [--batch=N] [--linger-us=X] [--deadline-us=X]
//                 [--attempts=N] [--no-hedge] [--tmpl=NAME] [--graphs=N]
//                 [--scale=F] [--seed=N] [--faults=SPEC] [--completions]
//                 [--trace=FILE] [--metrics] [--metrics-interval-us=X]
//
// --trace writes the run's request spans (plus telemetry counters) as a
// Chrome/Perfetto trace-event file; --metrics appends a latency-attribution
// report to stdout. Both are pure observers: with the flags absent, stdout
// is byte-identical to earlier builds.
//
// Exit codes: 0 success (all queries terminal, zero wrong results),
// 1 verification or accounting failure, 2 usage error.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/serve/pool.h"
#include "src/serve/server.h"
#include "src/serve/trace.h"
#include "src/simt/exec_policy.h"
#include "src/simt/log.h"

using namespace nestpar;

namespace {

constexpr const char* kUsage =
    "usage: nestpar_serve [--requests=N] [--qps=Q] [--shards=N] [--queue=N]\n"
    "  [--batch=N] [--linger-us=X] [--deadline-us=X] [--attempts=N]\n"
    "  [--no-hedge] [--tmpl=NAME] [--graphs=N] [--scale=F] [--seed=N]\n"
    "  [--faults=SPEC] [--completions]\n"
    "  --requests=N     queries to serve (default 200)\n"
    "  --qps=Q          open-loop arrival rate (default 3000)\n"
    "  --shards=N       simulated devices (default 4)\n"
    "  --queue=N        per-shard queue capacity (default 24)\n"
    "  --batch=N        max queries per consolidated dispatch (default 8)\n"
    "  --linger-us=X    partial-batch linger window (default 200)\n"
    "  --deadline-us=X  per-query latency budget (default 150000)\n"
    "  --attempts=N     execution attempts per query (default 3)\n"
    "  --no-hedge       back off in place instead of sibling re-dispatch\n"
    "  --tmpl=NAME      loop template for query execution (cons-grid)\n"
    "  --graphs=N       subgraph pool size (default 4)\n"
    "  --scale=F        subgraph size scale (default 0.5)\n"
    "  --seed=N         workload seed (default 2026)\n"
    "  --faults=SPEC    fault injection (NESTPAR_FAULTS syntax; default from\n"
    "                   the environment)\n"
    "  --completions    also print one line per completed request\n"
    "  --trace=FILE     write request spans + telemetry as a Chrome/Perfetto\n"
    "                   trace-event JSON file\n"
    "  --metrics        print latency attribution: slowest requests with\n"
    "                   phase split, per-shard utilization, SLO attainment\n"
    "  --metrics-interval-us=X  telemetry sampling tick in virtual us\n"
    "                   (default 1000; used by --trace and --metrics)";

/// Append the --metrics report: where the slow requests spent their time,
/// how busy each shard was, and how the run did against its deadline SLO.
void print_metrics(const serve::Server& server, const serve::ServeStats& s,
                   double deadline_us) {
  std::printf("\nlatency attribution (slowest requests):\n");
  std::printf("  %8s %-8s %10s %10s %10s %10s %10s\n", "request", "status",
              "latency", "queue", "batch", "exec", "retry");
  std::vector<const serve::Completion*> by_latency;
  by_latency.reserve(server.completions().size());
  for (const serve::Completion& c : server.completions()) {
    by_latency.push_back(&c);
  }
  std::sort(by_latency.begin(), by_latency.end(),
            [](const serve::Completion* a, const serve::Completion* b) {
              if (a->latency_us != b->latency_us) {
                return a->latency_us > b->latency_us;
              }
              return a->id < b->id;  // deterministic tie-break
            });
  const std::size_t top = std::min<std::size_t>(5, by_latency.size());
  for (std::size_t i = 0; i < top; ++i) {
    const serve::Completion& c = *by_latency[i];
    std::printf("  #%7llu %-8s %9.0fus %9.0fus %9.0fus %9.0fus %9.0fus\n",
                static_cast<unsigned long long>(c.id),
                std::string(serve::to_string(c.status)).c_str(), c.latency_us,
                c.queue_us, c.batch_us, c.exec_us, c.retry_us);
  }
  std::printf("  p99 split: queue=%.0fus batch=%.0fus exec=%.0fus "
              "retry=%.0fus (p99=%.0fus)\n",
              s.p99_queue_us, s.p99_batch_us, s.p99_exec_us, s.p99_retry_us,
              s.p99_us);

  std::printf("\nshard utilization (busy / makespan):\n");
  for (const serve::Shard& sh : server.shards()) {
    const double frac =
        s.makespan_us > 0.0 ? sh.counters().busy_us / s.makespan_us : 0.0;
    std::printf("  shard %d: %6.1f%% (%.0f us busy)\n", sh.id(), frac * 100.0,
                sh.counters().busy_us);
  }

  double burn_sum = 0.0;
  std::uint64_t burn_n = 0;
  for (const serve::Completion& c : server.completions()) {
    if (c.status == serve::RequestStatus::kOk && deadline_us > 0.0) {
      burn_sum += c.latency_us / deadline_us;
      ++burn_n;
    }
  }
  const double attained =
      s.submitted > 0
          ? static_cast<double>(s.ok) / static_cast<double>(s.submitted)
          : 0.0;
  std::printf("\nSLO attainment: %.1f%% ok (%llu/%llu)", attained * 100.0,
              static_cast<unsigned long long>(s.ok),
              static_cast<unsigned long long>(s.submitted));
  if (burn_n > 0) {
    std::printf(", mean deadline-budget burn %.1f%% over Ok",
                burn_sum / static_cast<double>(burn_n) * 100.0);
  }
  std::printf("\n");
}

int run(const bench::Args& args) {
  const auto requests = static_cast<int>(args.get_int("requests", 200));
  const double qps = args.get_double("qps", 3000.0);

  serve::ServeConfig cfg;
  cfg.num_shards = static_cast<int>(args.get_int("shards", 4));
  cfg.queue_capacity = static_cast<int>(args.get_int("queue", 24));
  cfg.batch_max = static_cast<int>(args.get_int("batch", 8));
  cfg.batch_linger_us = args.get_double("linger-us", 200.0);
  cfg.deadline_us = args.get_double("deadline-us", 150000.0);
  cfg.max_attempts = static_cast<int>(args.get_int("attempts", 3));
  cfg.hedge = !args.get_flag("no-hedge");
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));
  cfg.tmpl = nested::parse_loop_template(args.get_string("tmpl", "cons-grid"));
  const std::string faults_spec = args.get_string("faults", "");
  cfg.faults = faults_spec.empty() ? simt::FaultConfig::from_env()
                                   : simt::FaultConfig::parse(faults_spec);

  const std::string trace_path = args.get_string("trace", "");
  const bool want_metrics = args.get_flag("metrics");
  cfg.trace = !trace_path.empty();
  // Telemetry sampling is a pure observer; enable it only when an output
  // surface (trace counters or the metrics report) will consume it, so a
  // plain run stays byte-for-byte what it always was.
  if (cfg.trace || want_metrics) {
    cfg.metrics_interval_us = args.get_double("metrics-interval-us", 1000.0);
  }

  serve::PoolSpec pspec;
  pspec.num_graphs = static_cast<int>(args.get_int("graphs", 4));
  pspec.scale = args.get_double("scale", 0.5);
  pspec.seed = cfg.seed ^ 0x700full;

  const serve::SubgraphPool pool(pspec);
  const std::vector<serve::Request> workload =
      serve::make_open_loop_workload(pool, cfg, requests, qps);
  serve::Server server(cfg, pool, simt::ExecPolicy::from_env());
  const serve::ServeStats s = server.run(workload);

  std::printf("serving run: %d requests at %.0f qps over %d shard(s), "
              "template %s%s\n",
              requests, qps, cfg.num_shards,
              std::string(nested::name(cfg.tmpl)).c_str(),
              cfg.faults.enabled() ? " [chaos]" : "");
  std::printf("  outcome    ok=%llu expired=%llu shed=%llu wrong=%llu "
              "(submitted=%llu)\n",
              static_cast<unsigned long long>(s.ok),
              static_cast<unsigned long long>(s.expired),
              static_cast<unsigned long long>(s.shed),
              static_cast<unsigned long long>(s.wrong),
              static_cast<unsigned long long>(s.submitted));
  std::printf("  activity   attempts=%llu retries=%llu hedges=%llu "
              "batches=%llu probes=%llu trips=%llu faults=%llu "
              "degraded=%llu\n",
              static_cast<unsigned long long>(s.attempts),
              static_cast<unsigned long long>(s.retries),
              static_cast<unsigned long long>(s.hedges),
              static_cast<unsigned long long>(s.batches),
              static_cast<unsigned long long>(s.probes),
              static_cast<unsigned long long>(s.breaker_trips),
              static_cast<unsigned long long>(s.faults_injected),
              static_cast<unsigned long long>(s.degraded));
  std::printf("  latency-us p50=%.0f p95=%.0f p99=%.0f mean=%.0f max=%.0f\n",
              s.p50_us, s.p95_us, s.p99_us, s.mean_us, s.max_us);
  std::printf("  throughput %.0f ok-qps over %.1f ms makespan\n", s.qps_ok,
              s.makespan_us / 1000.0);

  std::printf("\nper-shard:\n");
  for (const serve::Shard& sh : server.shards()) {
    const serve::ShardCounters& c = sh.counters();
    std::printf("  shard %d: batches=%llu attempts=%llu failed=%llu "
                "faults=%llu trips=%d final=%s\n",
                sh.id(), static_cast<unsigned long long>(c.batches),
                static_cast<unsigned long long>(c.attempts),
                static_cast<unsigned long long>(c.failed_attempts),
                static_cast<unsigned long long>(c.faults_injected),
                sh.breaker().trips(),
                std::string(serve::to_string(sh.breaker().state())).c_str());
    for (const serve::BreakerTransition& t : sh.breaker().transitions()) {
      std::printf("    %12.1f us  %s -> %s\n", t.time_us,
                  std::string(serve::to_string(t.from)).c_str(),
                  std::string(serve::to_string(t.to)).c_str());
    }
  }

  if (want_metrics) print_metrics(server, s, cfg.deadline_us);

  if (!trace_path.empty()) {
    std::ofstream f(trace_path, std::ios::binary);
    if (!f) {
      simt::log::error("error: cannot open trace file '%s'\n",
                       trace_path.c_str());
      return 1;
    }
    serve::write_serve_trace(f, server.tracer(), &server.telemetry(),
                             cfg.num_shards);
    std::printf("\nwrote trace: %s\n", trace_path.c_str());
  }

  if (args.get_flag("completions")) {
    std::printf("\ncompletions:\n");
    for (const serve::Completion& c : server.completions()) {
      std::printf("  #%llu %-8s %-7s shard=%d attempts=%d latency=%.0f us%s%s\n",
                  static_cast<unsigned long long>(c.id),
                  std::string(serve::to_string(c.kind)).c_str(),
                  std::string(serve::to_string(c.status)).c_str(), c.shard,
                  c.attempts, c.latency_us, c.hedged ? " hedged" : "",
                  c.status == serve::RequestStatus::kOk && !c.correct
                      ? " WRONG"
                      : "");
    }
  }

  if (s.wrong > 0) {
    simt::log::error("FAIL: %llu Ok result(s) failed verification\n",
                     static_cast<unsigned long long>(s.wrong));
    return 1;
  }
  if (s.ok + s.expired + s.shed != s.submitted) {
    simt::log::error("FAIL: request accounting broken\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const bench::Args args(argc, argv, kUsage);
    return run(args);
  } catch (const std::invalid_argument& e) {
    nestpar::simt::log::error("error: %s\n%s\n", e.what(), kUsage);
    return 2;
  }
}
